"""Bit-identity tests for the universe-wide batched phase-1 fit.

The contract under test: :func:`repro.core.universe_fit.fit_universe` /
:func:`fit_drafts_universe` produce, for every key of a (ragged) universe,
exactly the floats the per-key scalar path produces — QBETS bound series,
change-point decisions, final bounds, exported state, ladder levels and
bids — and the fitted state hands off losslessly to every consumer
(``QBETS.load_state_dict`` continuation, ``OnlineDraftsPredictor``
snapshots, the frozen-replay ``UniverseTicker``, the predictor cache, the
AR(1) prefit).
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.backtest import predcache
from repro.baselines.ar1 import AR1Bid
from repro.core.drafts import DraftsConfig, DraftsPredictor
from repro.core.online import OnlineDraftsPredictor
from repro.core.qbets import QBETS, QBETSConfig
from repro.core.universe import UniverseTicker
from repro.core.universe_fit import (
    fit_drafts_universe,
    fit_universe,
    scan_universe,
)
from repro.market.synthetic import VOLATILITY_CLASSES, synthetic_trace
from repro.market.traces import PriceTrace

CFG = QBETSConfig(q=0.975, c=0.99)
CLASSES = list(VOLATILITY_CLASSES)


def _series(i: int, n_epochs: int) -> np.ndarray:
    trace = synthetic_trace(
        CLASSES[i % len(CLASSES)], seed=500 + i, n_epochs=n_epochs
    )
    return np.asarray(trace.prices, dtype=float)


def _nan_eq(a: float, b: float) -> bool:
    return a == b or (math.isnan(a) and math.isnan(b))


def _assert_state_equal(ref: dict, got: dict, label: str) -> None:
    for key in ref:
        va, vb = ref[key], got[key]
        if key == "detector":
            for side in ("up", "down"):
                assert list(va[side]["events"]) == list(vb[side]["events"]), (
                    f"{label}: detector.{side} events"
                )
        elif isinstance(va, np.ndarray):
            assert np.array_equal(
                va, np.asarray(vb), equal_nan=(va.dtype.kind == "f")
            ), f"{label}: {key}"
        else:
            same = va == vb or (
                isinstance(va, float)
                and isinstance(vb, float)
                and math.isnan(va)
                and math.isnan(vb)
            )
            assert same, f"{label}: {key} ref={va!r} got={vb!r}"


def _assert_key_matches(res, k: int, x: np.ndarray, *, bounds: bool) -> None:
    """One key of a batch result vs a fresh scalar QBETS replay."""
    qb = QBETS(CFG)
    if bounds:
        ref_bounds = qb.bound_series(x)
        assert np.array_equal(
            ref_bounds, res.bounds(k), equal_nan=True
        ), f"key {k}: bound series"
    else:
        qb.scan(x)
    # state_dict() first: reading .bound would clear scan-mode staleness.
    ref_state = qb.state_dict()
    assert _nan_eq(qb.bound, res.final_bound(k)), f"key {k}: final bound"
    assert list(qb.changepoints) == list(res.changepoints(k)), (
        f"key {k}: change points"
    )
    _assert_state_equal(ref_state, res.qbets_state(k), f"key {k}")


class TestFitUniverse:
    """fit_universe vs per-key scalar bound_series/scan replays."""

    def _crafted_universe(self) -> list[np.ndarray]:
        """Ragged lengths plus crafted change points at the boundaries.

        * key 1 — a regime drop right after ``min_history``, so the
          change point lands as early as the detector can decide;
        * key 2 — a mid-history regime drop (change point plus a
          follow-up re-detection);
        * key 4 — a drop 150 epochs before the end, whose change point
          fires within the last few epochs of history;
        * keys 3/5/6/7 — ragged: shorter histories, below
          ``min_history``, and a single announcement.
        """
        series = [_series(i, 1600) for i in range(8)]
        series[3] = series[3][:700]
        min_history = CFG.min_history()
        series[5] = series[5][: min_history - 1]
        series[6] = series[6][:60]
        series[7] = series[7][:1]
        series[1] = series[1].copy()
        series[1][250:] *= 0.12
        series[2] = series[2].copy()
        series[2][700:] *= 0.12
        series[4] = series[4].copy()
        series[4][1450:] *= 0.12
        return series

    @pytest.mark.parametrize("bounds", [True, False], ids=["fit", "scan"])
    def test_crafted_universe_bit_identical(self, bounds):
        series = self._crafted_universe()
        res = fit_universe(
            series, CFG, need_bounds=bounds
        ) if bounds else scan_universe(series, CFG)
        for k, x in enumerate(series):
            _assert_key_matches(res, k, x, bounds=bounds)

    def test_crafted_change_points_actually_fire(self):
        series = self._crafted_universe()
        res = fit_universe(series, CFG)
        early = list(res.changepoints(1))
        mid = list(res.changepoints(2))
        late = list(res.changepoints(4))
        assert early and early[0] < 700, "early change point missing"
        assert any(700 <= cp < 1400 for cp in mid), (
            "mid-history change point missing"
        )
        assert late and late[-1] >= 1550, "final-epoch change point missing"

    def test_short_histories_never_bound(self):
        # Below min_history the scalar path never publishes a bound; the
        # batch path must agree (all-nan series, nan final bound).
        series = self._crafted_universe()
        res = fit_universe(series, CFG)
        for k in (5, 6, 7):
            assert np.all(np.isnan(res.bounds(k)))
            assert math.isnan(res.final_bound(k))

    def test_single_key_universe(self):
        x = _series(0, 1200)
        res = fit_universe([x], CFG)
        _assert_key_matches(res, 0, x, bounds=True)

    def test_empty_universe(self):
        res = fit_universe([], CFG)
        assert res.n_keys == 0

    def test_state_continues_under_scalar_updates(self):
        # load_state_dict handoff: a scalar QBETS resumed from the batch
        # state must track a never-interrupted reference for 300 more
        # observations — bounds, change points, and exported state.
        series = self._crafted_universe()
        res = fit_universe(series, CFG)
        rng = np.random.default_rng(7)
        for k in (0, 1, 2, 3, 5, 7):
            ref = QBETS(CFG)
            ref.bound_series(series[k])
            resumed = QBETS(CFG)
            resumed.load_state_dict(res.qbets_state(k))
            for v in rng.uniform(0.05, 0.9, size=300):
                ref.update(float(v))
                resumed.update(float(v))
                assert _nan_eq(ref.bound, resumed.bound), (
                    f"key {k}: bound diverged mid-continuation"
                )
            assert list(ref.changepoints) == list(resumed.changepoints)
            _assert_state_equal(
                ref.state_dict(), resumed.state_dict(), f"continued key {k}"
            )

    def test_forced_ejection_matches_batch_path(self):
        # The eject hook drops keys to the scalar path mid-fit; results
        # must be indistinguishable from the pure batch run.
        series = self._crafted_universe()
        pure = fit_universe(series, CFG)
        ejected = fit_universe(
            series, CFG, eject_after={0: 600, 1: 0, 4: 1599}
        )
        assert sorted(ejected.ejected_keys) == [0, 1, 4]
        for k in range(len(series)):
            assert np.array_equal(
                pure.bounds(k), ejected.bounds(k), equal_nan=True
            )
            _assert_state_equal(
                pure.qbets_state(k), ejected.qbets_state(k), f"eject key {k}"
            )

    def test_unsupported_config_falls_back_to_scalar(self):
        cfg_lower = QBETSConfig(q=0.1, c=0.99, side="lower")
        series = [_series(i, 500) for i in range(3)]
        res = fit_universe(series, cfg_lower)
        for k, x in enumerate(series):
            qb = QBETS(cfg_lower)
            ref = qb.bound_series(x)
            assert np.array_equal(ref, res.bounds(k), equal_nan=True)
            _assert_state_equal(
                qb.state_dict(), res.qbets_state(k), f"fallback key {k}"
            )


@pytest.fixture()
def drafts_traces():
    traces = [
        synthetic_trace(CLASSES[i % len(CLASSES)], seed=900 + i, n_epochs=900)
        for i in range(5)
    ]
    # Ragged: one short key (distinct announcement grid is fine here —
    # only the frozen-replay test needs a shared grid).
    short = traces[3]
    traces[3] = PriceTrace(
        short.times[:400],
        short.prices[:400],
        instance_type=short.instance_type,
        zone=short.zone,
    )
    return traces


class TestFitDraftsUniverse:
    """The DrAFTS-shaped handoffs built on top of the batch fitter."""

    def test_predictors_bit_identical_to_scalar_fits(self, drafts_traces):
        config = DraftsConfig(probability=0.95)
        fit = fit_drafts_universe(drafts_traces, config)
        for k, trace in enumerate(drafts_traces):
            ref = DraftsPredictor(trace, config)
            pred = fit.predictor(k)
            assert np.array_equal(
                ref._bounds, pred._bounds, equal_nan=True
            ), f"key {k}: bound series"
            assert _nan_eq(ref._final_bound, pred._final_bound)
            assert list(ref.changepoints) == list(pred.changepoints)
            assert np.array_equal(
                np.asarray(ref._ladder.levels),
                np.asarray(pred._ladder.levels),
            ), f"key {k}: ladder levels"
            n = len(trace)
            for t_idx in (n // 2, n - 1):
                for duration in (1800.0, 3600.0, 86400.0, 1e12):
                    assert _nan_eq(
                        ref.bid_for(duration, t_idx),
                        pred.bid_for(duration, t_idx),
                    ), f"key {k}: bid_for({duration}, {t_idx})"

    def test_mixed_configs_group_and_match(self, drafts_traces):
        # Per-key probabilities and ladder domains: the fitter groups by
        # QBETS-equivalent config internally; every key must still match
        # its own scalar fit.
        configs = [
            DraftsConfig(
                probability=0.95 if k % 2 == 0 else 0.99,
                max_price=100.0 * (1 + k % 3),
            )
            for k in range(len(drafts_traces))
        ]
        fit = fit_drafts_universe(drafts_traces, configs)
        for k, (trace, config) in enumerate(zip(drafts_traces, configs)):
            ref = DraftsPredictor(trace, config)
            pred = fit.predictor(k)
            assert np.array_equal(ref._bounds, pred._bounds, equal_nan=True)
            assert _nan_eq(ref._final_bound, pred._final_bound)

    def test_online_snapshot_handoff_and_continuation(self, drafts_traces):
        config = DraftsConfig(probability=0.95)
        fit = fit_drafts_universe(drafts_traces, config)
        for k, trace in enumerate(drafts_traces):
            ref = OnlineDraftsPredictor(config)
            ref.extend(trace)
            online = fit.online_predictor(k)
            for pred in (ref, online):
                assert pred.n == len(trace)
            a = ref.curve_at(ref.n, instance_type="t", zone="z")
            b = online.curve_at(online.n, instance_type="t", zone="z")
            if a is None or b is None:
                assert a is b
            else:
                assert a.bids == b.bids
                assert all(
                    _nan_eq(x, y) for x, y in zip(a.durations, b.durations)
                )

    def test_extend_frozen_handoff_matches_predictor(self, drafts_traces):
        # The frozen-replay driver's exact enrollment: batch-fitted
        # bounds/levels pinned into a UniverseTicker, the epoch walk
        # replayed through extend_frozen, bids read mid-stream.
        config = DraftsConfig(probability=0.95)
        shared = [t for t in drafts_traces if len(t) == 900]
        fit = fit_drafts_universe(shared, config)
        grid = np.asarray(shared[0].times, dtype=float)
        ticker = UniverseTicker(config)
        preds = []
        for k, trace in enumerate(shared):
            pred = fit.predictor(k)
            preds.append(pred)
            ticker.add_key(
                f"k{k}",
                bounds=pred._bounds,
                final_bound=pred._final_bound,
                levels=pred._ladder.levels,
                max_price=pred.config.max_price,
                instance_type="t",
                zone="z",
            )
        price_rows = np.stack([t.prices for t in shared])
        bound_rows = np.stack([p._bounds for p in preds])
        checkpoints = (300, 600, 899)
        n = 0
        for t in checkpoints:
            ticker.extend_frozen(
                grid[n:t],
                price_rows[:, n:t],
                bound_rows[:, n:t],
                bound_rows[:, t],
            )
            n = t
            for k, pred in enumerate(preds):
                for duration in (3600.0, 6 * 3600.0, 86400.0):
                    got = ticker.bid_for(
                        f"k{k}", duration, now=float(grid[t])
                    )
                    ref = pred.bid_for(duration, t)
                    assert _nan_eq(got, ref), (
                        f"key {k}: bid_for({duration}) at epoch {t}"
                    )


class TestPredcacheBatch:
    def setup_method(self):
        predcache.clear()

    def teardown_method(self):
        predcache.clear()

    def test_batch_fit_populates_cache(self, drafts_traces):
        config = DraftsConfig(probability=0.95)
        preds = predcache.get_predictors_batch(drafts_traces, config)
        info = predcache.cache_info()
        assert info["batch_fits"] == len(drafts_traces)
        assert info["misses"] == 0
        # Scalar-path lookups now hit the batch-fitted entries.
        for trace, pred in zip(drafts_traces, preds):
            assert predcache.get_predictor(trace, config) is pred
        assert predcache.cache_info()["misses"] == 0
        assert predcache.cache_info()["hits"] >= len(drafts_traces)

    def test_cached_keys_are_not_refit(self, drafts_traces):
        config = DraftsConfig(probability=0.95)
        first = predcache.get_predictor(drafts_traces[0], config)
        preds = predcache.get_predictors_batch(drafts_traces, config)
        assert preds[0] is first
        info = predcache.cache_info()
        assert info["batch_fits"] == len(drafts_traces) - 1
        assert info["misses"] == 1  # the scalar pre-fit

    def test_config_list_length_validated(self, drafts_traces):
        config = DraftsConfig(probability=0.95)
        with pytest.raises(ValueError, match="configs"):
            predcache.get_predictors_batch(drafts_traces, [config])


class TestAR1Prefit:
    def teardown_method(self):
        AR1Bid.clear_prefit()

    def test_prefit_matches_scalar_scan(self, drafts_traces):
        AR1Bid.clear_prefit()
        refs = [
            AR1Bid(
                trace, 0.99, max_price=AR1Bid._combo_max_price(trace)
            )._changepoints.copy()
            for trace in drafts_traces
        ]
        AR1Bid.clear_prefit()
        scanned = AR1Bid.prefit_universe(drafts_traces, 0.99)
        assert scanned == len(drafts_traces)
        for trace, ref in zip(drafts_traces, refs):
            got = AR1Bid(
                trace, 0.99, max_price=AR1Bid._combo_max_price(trace)
            )._changepoints
            assert np.array_equal(got, ref)
        # Idempotent: everything is cached now.
        assert AR1Bid.prefit_universe(drafts_traces, 0.99) == 0
