"""Unit tests for the sharded curve store."""

import threading

import pytest

from repro.serving.store import (
    EntryState,
    ShardedCurveStore,
    _shard_index,
)

KEY = ("c4.large", "us-east-1b", 0.95)
OTHER = ("m3.medium", "us-west-1a", 0.99)


class TestConstruction:
    def test_validation(self):
        with pytest.raises(ValueError):
            ShardedCurveStore(n_shards=0)
        with pytest.raises(ValueError):
            ShardedCurveStore(refresh_seconds=0)

    def test_shard_assignment_is_deterministic(self):
        # CRC32, not Python's salted hash: stable across runs/processes.
        assert _shard_index(KEY, 16) == _shard_index(KEY, 16)
        spread = {
            _shard_index(("t", f"zone-{i}", 0.95), 8) for i in range(100)
        }
        assert len(spread) > 1  # keys actually spread over shards


class TestStates:
    def test_missing_then_fresh_then_stale(self):
        store = ShardedCurveStore(refresh_seconds=900.0)
        entry, state = store.lookup(KEY, 1000.0)
        assert entry is None and state is EntryState.MISSING

        store.put(KEY, None, computed_at=1000.0)
        _, state = store.lookup(KEY, 1500.0)
        assert state is EntryState.FRESH

        _, state = store.lookup(KEY, 1000.0 + 900.0)
        assert state is EntryState.STALE

    def test_future_entry_is_stale(self):
        # Backtests rewind time; an entry computed "in the future" must
        # not be served as fresh (same rule as DraftsService.curve).
        store = ShardedCurveStore(refresh_seconds=900.0)
        store.put(KEY, None, computed_at=5000.0)
        _, state = store.lookup(KEY, 4000.0)
        assert state is EntryState.STALE

    def test_generation_increments(self):
        store = ShardedCurveStore()
        assert store.put(KEY, None, 0.0).generation == 1
        assert store.put(KEY, None, 10.0).generation == 2
        assert store.put(OTHER, None, 0.0).generation == 1


class TestBookkeeping:
    def test_popularity_and_last_now(self):
        store = ShardedCurveStore()
        store.lookup(KEY, 100.0)
        store.lookup(KEY, 50.0)  # earlier instant must not regress last_now
        assert store.popularity(KEY) == 2
        assert store.last_requested_now(KEY) == 100.0
        assert store.popularity(OTHER) == 0

    def test_peek_does_not_record(self):
        store = ShardedCurveStore()
        store.peek(KEY)
        assert store.popularity(KEY) == 0

    def test_keys_and_requested_keys_sorted(self):
        store = ShardedCurveStore()
        store.lookup(OTHER, 0.0)
        store.lookup(KEY, 0.0)
        store.put(OTHER, None, 0.0)
        store.put(KEY, None, 0.0)
        assert store.keys() == sorted([KEY, OTHER])
        assert store.requested_keys() == sorted([KEY, OTHER])

    def test_invalidate(self):
        store = ShardedCurveStore()
        store.put(KEY, None, 0.0)
        assert store.invalidate(KEY)
        assert not store.invalidate(KEY)
        assert len(store) == 0

    def test_stale_keys_census(self):
        store = ShardedCurveStore(n_shards=4, refresh_seconds=900.0)
        fresh = ("fresh", "zone", 0.95)
        store.put(fresh, None, computed_at=10_000.0)
        store.put(KEY, None, computed_at=0.0)
        store.put(OTHER, None, computed_at=0.0)
        assert store.stale_keys(now=10_100.0) == sorted([KEY, OTHER])
        # A future-computed entry counts as stale too (backtest rewinds).
        assert store.stale_keys(now=10.0) == [fresh]
        assert fresh not in store.stale_keys(now=10_050.0)

    def test_stats_census(self):
        store = ShardedCurveStore(n_shards=4, refresh_seconds=900.0)
        store.put(KEY, None, computed_at=0.0)
        store.put(OTHER, None, computed_at=10_000.0)
        stats = store.stats(now=10_100.0)
        assert stats["entries"] == 2
        assert stats["states"]["fresh"] == 1
        assert stats["states"]["stale-serving"] == 1
        assert sum(stats["per_shard"]) == 2


class TestConcurrency:
    def test_concurrent_puts_and_lookups(self):
        store = ShardedCurveStore(n_shards=4)
        keys = [("t", f"zone-{i % 7}", 0.95) for i in range(7)]
        errors = []

        def hammer(seed: int):
            try:
                for i in range(2000):
                    key = keys[(seed + i) % len(keys)]
                    store.put(key, None, computed_at=float(i))
                    store.lookup(key, float(i))
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=hammer, args=(s,)) for s in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        # 8 threads x 2000 puts spread over 7 keys: generations must sum
        # to the total number of puts (no lost updates).
        total = sum(store.peek(k).generation for k in keys)
        assert total == 8 * 2000
