"""Unit tests for the study universe."""

import numpy as np
import pytest

from repro.market.universe import CLASS_WEIGHTS, Universe, UniverseConfig


@pytest.fixture(scope="module")
def universe():
    return Universe(UniverseConfig(seed=11, n_epochs=600))


class TestAssignment:
    def test_full_combination_count(self, universe):
        assert len(universe.combos()) == 452

    def test_pinned_paper_examples(self, universe):
        assert universe.combo("cg1.4xlarge", "us-east-1c").volatility_class == "premium"
        assert universe.combo("c4.4xlarge", "us-east-1e").volatility_class == "volatile"
        assert universe.combo("m1.large", "us-west-2c").volatility_class == "calm"
        assert universe.combo("c3.2xlarge", "us-west-1a").volatility_class == "spiky"

    def test_class_mix_roughly_matches_weights(self, universe):
        counts = {}
        for combo in universe.combos():
            counts[combo.volatility_class] = counts.get(combo.volatility_class, 0) + 1
        for cls, weight in CLASS_WEIGHTS.items():
            share = counts.get(cls, 0) / 452
            assert abs(share - weight) < 0.08, (cls, share, weight)

    def test_assignment_deterministic(self):
        a = Universe(UniverseConfig(seed=11, n_epochs=600))
        b = Universe(UniverseConfig(seed=11, n_epochs=600))
        for ca, cb in zip(a.combos(), b.combos()):
            assert ca == cb

    def test_ondemand_price_regional(self, universe):
        east = universe.combo("c4.large", "us-east-1b").ondemand_price
        west = universe.combo("c4.large", "us-west-1a").ondemand_price
        assert west == pytest.approx(east * 1.1, abs=1e-4)

    def test_unknown_combo(self, universe):
        with pytest.raises(KeyError):
            universe.combo("cg1.4xlarge", "us-west-2a")


class TestTraces:
    def test_trace_cached_and_labelled(self, universe):
        combo = universe.combo("c4.large", "us-east-1b")
        t1 = universe.trace(combo)
        t2 = universe.trace(combo)
        assert t1 is t2
        assert t1.instance_type == "c4.large"
        assert t1.zone == "us-east-1b"
        assert len(t1) == 600

    def test_traces_differ_across_combos(self, universe):
        a = universe.trace(universe.combo("c4.large", "us-east-1b"))
        b = universe.trace(universe.combo("c4.large", "us-east-1c"))
        assert not np.array_equal(a.prices, b.prices)

    def test_trace_deterministic_across_builds(self):
        a = Universe(UniverseConfig(seed=11, n_epochs=300))
        b = Universe(UniverseConfig(seed=11, n_epochs=300))
        ca = a.combo("c4.large", "us-east-1b")
        cb = b.combo("c4.large", "us-east-1b")
        np.testing.assert_array_equal(a.trace(ca).prices, b.trace(cb).prices)


class TestQueries:
    def test_zone_queries(self, universe):
        assert len(universe.zones()) == 9
        assert len(universe.zones("us-west-1")) == 2
        combos = universe.combos_in_zone("us-west-1a")
        assert all(c.zone.name == "us-west-1a" for c in combos)
        by_type = universe.combos_for_type("c4.large")
        assert len(by_type) == 9  # offered everywhere

    def test_subsample_stratified_and_pinned(self, universe):
        picked = universe.subsample(per_class=2)
        classes = {}
        for combo in picked:
            classes.setdefault(combo.volatility_class, []).append(combo.key)
        assert set(classes) == set(CLASS_WEIGHTS)
        assert all(len(v) == 2 for v in classes.values())
        # Pinned combos survive scaling.
        all_keys = {c.key for c in picked}
        assert "cg1.4xlarge@us-east-1b" in all_keys

    def test_subsample_deterministic(self, universe):
        a = universe.subsample(per_class=3)
        b = universe.subsample(per_class=3)
        assert [c.key for c in a] == [c.key for c in b]

    def test_subsample_validation(self, universe):
        with pytest.raises(ValueError):
            universe.subsample(per_class=0)


class TestConfig:
    def test_weights_must_sum_to_one(self):
        with pytest.raises(ValueError):
            UniverseConfig(class_weights=(("calm", 0.5),))

    def test_epoch_validation(self):
        with pytest.raises(ValueError):
            UniverseConfig(n_epochs=1)
