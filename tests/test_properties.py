"""Hypothesis property tests on the core invariants."""

import math

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core import binomial
from repro.core.curves import BidDurationCurve, bid_ladder
from repro.core.durations import censored_durations, next_exceed_indices
from repro.market.traces import PriceTrace
from repro.util.timeutils import billable_hours

prices_strategy = st.lists(
    st.floats(min_value=0.0001, max_value=50.0, allow_nan=False),
    min_size=2,
    max_size=120,
)


@given(
    n=st.integers(min_value=1, max_value=5000),
    q=st.floats(min_value=0.01, max_value=0.99),
    c=st.floats(min_value=0.5, max_value=0.999),
)
@settings(max_examples=200, deadline=None)
def test_bound_index_definition(n, q, c):
    """The returned k always satisfies the defining inequalities."""
    from scipy import stats

    k = binomial.upper_bound_index(n, q, c)
    if k >= 0:
        assert 0 <= k < n
        assert stats.binom.cdf(k, n, 1 - q) <= 1 - c + 1e-12
    else:
        assert stats.binom.cdf(0, n, 1 - q) > 1 - c - 1e-12


@given(
    n=st.integers(min_value=200, max_value=3000),
    q=st.floats(min_value=0.5, max_value=0.99),
)
@settings(max_examples=50, deadline=None)
def test_higher_confidence_is_more_conservative(n, q):
    k_low = binomial.upper_bound_index(n, q, 0.8)
    k_high = binomial.upper_bound_index(n, q, 0.99)
    assume(k_low >= 0 and k_high >= 0)
    # Higher confidence selects an order statistic closer to the maximum.
    assert k_high <= k_low


@given(prices=prices_strategy, threshold=st.floats(min_value=0.0001, max_value=60.0))
@settings(max_examples=150, deadline=None)
def test_next_exceed_properties(prices, threshold):
    p = np.asarray(prices)
    idx = next_exceed_indices(p, threshold)
    n = p.size
    for s in range(n):
        j = int(idx[s])
        assert s <= j <= n
        # Nothing in [s, j) reaches the threshold; j itself does (if < n).
        assert np.all(p[s:j] < threshold)
        if j < n:
            assert p[j] >= threshold


@given(prices=prices_strategy, data=st.data())
@settings(max_examples=100, deadline=None)
def test_censored_durations_bounded_by_horizon(prices, data):
    p = np.asarray(prices)
    times = np.arange(p.size, dtype=float) * 300.0
    threshold = data.draw(st.floats(min_value=0.0001, max_value=60.0))
    t_idx = data.draw(st.integers(min_value=1, max_value=p.size))
    d = censored_durations(times, next_exceed_indices(p, threshold), t_idx)
    assert d.size == t_idx
    assert np.all(d >= 0)
    # No duration can exceed the time from its start to the censor point.
    starts = times[:t_idx]
    horizon = times[min(t_idx, p.size - 1)]
    assert np.all(d <= horizon - starts + 1e-9)


@given(
    minimum=st.floats(min_value=1e-4, max_value=10.0),
    increment=st.floats(min_value=0.01, max_value=0.5),
    span=st.floats(min_value=1.1, max_value=10.0),
)
@settings(max_examples=100, deadline=None)
def test_bid_ladder_invariants(minimum, increment, span):
    ladder = bid_ladder(minimum, increment, span)
    assert ladder[0] == pytest.approx(minimum)
    assert ladder[-1] == pytest.approx(minimum * span, rel=1e-9)
    assert np.all(np.diff(ladder) > 0)
    # No rung gap exceeds the configured increment.
    assert np.all(ladder[1:] / ladder[:-1] <= 1 + increment + 1e-9)


@given(
    n=st.integers(min_value=1, max_value=12),
    data=st.data(),
)
@settings(max_examples=100, deadline=None)
def test_curve_lookup_consistency(n, data):
    bids = np.cumsum(
        data.draw(
            st.lists(
                st.floats(min_value=0.01, max_value=1.0),
                min_size=n,
                max_size=n,
            )
        )
    )
    durations = np.cumsum(
        data.draw(
            st.lists(
                st.floats(min_value=0.0, max_value=3600.0),
                min_size=n,
                max_size=n,
            )
        )
    )
    curve = BidDurationCurve(
        bids=tuple(float(b) for b in bids),
        durations=tuple(float(d) for d in durations),
        probability=0.95,
    )
    target = data.draw(st.floats(min_value=0.0, max_value=float(durations[-1])))
    bid = curve.bid_for_duration(target)
    assert not math.isnan(bid)
    # The guarantee at the returned bid covers the request...
    assert curve.duration_for_bid(bid) >= target
    # ...and no cheaper rung does.
    cheaper = [b for b in curve.bids if b < bid]
    for b in cheaper:
        assert curve.duration_for_bid(b) < target


@given(duration=st.floats(min_value=0.0, max_value=1e7))
@settings(max_examples=200, deadline=None)
def test_billable_hours_properties(duration):
    hours = billable_hours(duration)
    assert hours >= 1
    assert (hours - 1) * 3600.0 < max(duration, 1.0) <= hours * 3600.0 or (
        duration == 0.0 and hours == 1
    )


@given(
    times_start=st.floats(min_value=0, max_value=1e6),
    prices=prices_strategy,
)
@settings(max_examples=100, deadline=None)
def test_price_trace_roundtrip(times_start, prices):
    times = times_start + np.arange(len(prices)) * 300.0
    trace = PriceTrace(times, np.round(np.asarray(prices), 4).clip(min=1e-4))
    via_json = PriceTrace.from_json(trace.to_json())
    np.testing.assert_allclose(via_json.prices, trace.prices)
    via_csv = PriceTrace.from_csv(trace.to_csv())
    np.testing.assert_allclose(via_csv.times, trace.times)
    np.testing.assert_allclose(via_csv.prices, trace.prices)


@given(
    data=st.data(),
    supply=st.integers(min_value=0, max_value=40),
    reserve=st.floats(min_value=0.01, max_value=2.0),
)
@settings(max_examples=150, deadline=None)
def test_market_clearing_invariants(data, supply, reserve):
    """The uniform-price clearing rule's defining properties hold for any
    bid book (§2.1)."""
    from repro.market.auction import Bid, clear_market

    n = data.draw(st.integers(min_value=0, max_value=25))
    bids = [
        Bid(
            bidder_id=i,
            price=data.draw(
                st.floats(min_value=0.01, max_value=10.0, allow_nan=False)
            ),
            quantity=data.draw(st.integers(min_value=1, max_value=4)),
        )
        for i in range(n)
    ]
    result = clear_market(bids, supply, reserve)
    by_id = {b.bidder_id: b for b in bids}
    # Price is never below the reserve (tick-quantisation tolerance).
    assert result.price >= round(reserve, 4) - 5e-5
    # Every accepted bid can afford the clearing price.
    for bidder in result.accepted:
        assert by_id[bidder].price >= result.price - 5e-5
    # Allocation never exceeds supply; accepted + rejected = everyone.
    assert result.supply_used <= supply
    assert set(result.accepted) | set(result.rejected) == set(by_id)
    assert not (set(result.accepted) & set(result.rejected))
    # No rejected bid above the price could have fit in the leftovers
    # (all-or-nothing: its whole quantity must not fit).
    leftover = supply - result.supply_used
    for bidder in result.rejected:
        bid = by_id[bidder]
        if bid.price > result.price:
            assert bid.quantity > leftover
