"""Unit and property tests for the Fenwick-tree multiset."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fenwick import FenwickTree


class TestBasics:
    def test_empty(self):
        tree = FenwickTree(16)
        assert len(tree) == 0
        assert tree.prefix_count(15) == 0
        with pytest.raises(IndexError):
            tree.kth_smallest(0)

    def test_insert_and_select(self):
        tree = FenwickTree(100)
        for v in [5, 1, 7, 5, 99, 0]:
            tree.add(v)
        assert len(tree) == 6
        assert tree.kth_smallest(0) == 0
        assert tree.kth_smallest(2) == 5
        assert tree.kth_smallest(3) == 5
        assert tree.kth_largest(0) == 99
        assert tree.kth_largest(5) == 0

    def test_counts_and_rank(self):
        tree = FenwickTree(10)
        tree.add(3, count=4)
        tree.add(7)
        assert tree.count(3) == 4
        assert tree.count(4) == 0
        assert tree.rank(3) == 0
        assert tree.rank(4) == 4
        assert tree.prefix_count(7) == 5

    def test_remove(self):
        tree = FenwickTree(10)
        tree.add(4, count=2)
        tree.remove(4)
        assert tree.count(4) == 1
        with pytest.raises(ValueError):
            tree.remove(4, count=5)

    def test_domain_errors(self):
        tree = FenwickTree(8)
        with pytest.raises(IndexError):
            tree.add(8)
        with pytest.raises(IndexError):
            tree.add(-1)
        with pytest.raises(ValueError):
            FenwickTree(0)

    def test_clear(self):
        tree = FenwickTree(8)
        tree.add(3)
        tree.clear()
        assert len(tree) == 0
        assert tree.count(3) == 0

    def test_to_counts(self):
        tree = FenwickTree(6)
        for v in [0, 0, 5, 2]:
            tree.add(v)
        assert list(tree.to_counts()) == [2, 0, 1, 0, 0, 1]

    def test_kth_bounds_checked(self):
        tree = FenwickTree(8)
        tree.add(1)
        with pytest.raises(IndexError):
            tree.kth_smallest(1)
        with pytest.raises(IndexError):
            tree.kth_largest(-1)


class TestAgainstReference:
    def test_random_workload_matches_sorted_list(self, rng):
        tree = FenwickTree(64)
        reference: list[int] = []
        for _ in range(2000):
            if reference and rng.random() < 0.4:
                v = reference.pop(rng.integers(len(reference)))
                tree.remove(int(v))
            else:
                v = int(rng.integers(0, 64))
                reference.append(v)
                tree.add(v)
            reference.sort()
            assert len(tree) == len(reference)
            if reference:
                k = int(rng.integers(len(reference)))
                assert tree.kth_smallest(k) == reference[k]
                assert tree.kth_largest(k) == reference[len(reference) - 1 - k]


@given(
    values=st.lists(st.integers(min_value=0, max_value=127), min_size=1, max_size=200)
)
@settings(max_examples=100, deadline=None)
def test_order_statistics_match_numpy(values):
    tree = FenwickTree(128)
    for v in values:
        tree.add(v)
    ordered = np.sort(values)
    for k in range(len(values)):
        assert tree.kth_smallest(k) == ordered[k]
    assert tree.kth_largest(0) == ordered[-1]


@given(
    values=st.lists(st.integers(min_value=0, max_value=63), min_size=2, max_size=100),
    data=st.data(),
)
@settings(max_examples=60, deadline=None)
def test_rank_prefix_invariants(values, data):
    tree = FenwickTree(64)
    for v in values:
        tree.add(v)
    probe = data.draw(st.integers(min_value=0, max_value=63))
    assert tree.prefix_count(probe) == sum(1 for v in values if v <= probe)
    assert tree.rank(probe) == sum(1 for v in values if v < probe)
    assert tree.prefix_count(63) == len(values)
