"""Tests for the crash-safe snapshot layer.

Three levels: the framed file format (checksums, tearing, version skew),
the service checkpoint directory (save/load round-trip, damaged files
degrade to clean refits), and the gateway lifecycle (warm start, periodic
checkpointing). The contract throughout: damage is *detected* and degrades
to the pre-checkpoint cold-refit behaviour — it never crashes the serving
path and never resurrects corrupt predictor state.
"""

import json
import math

import numpy as np
import pytest

from repro.cloud.api import EC2Api
from repro.service.drafts_service import DraftsService, ServiceConfig
from repro.service.persistence import (
    MANIFEST_NAME,
    SNAPSHOT_VERSION,
    SnapshotError,
    dumps_snapshot,
    filename_key,
    key_filename,
    loads_snapshot,
    read_snapshot,
    write_snapshot,
)
from repro.serving.clock import ManualClock
from repro.serving.gateway import GatewayConfig, ServingGateway


def curves_equal(a, b) -> bool:
    if a is None or b is None:
        return a is b
    if a.bids != b.bids or (a.probability, a.computed_at) != (
        b.probability,
        b.computed_at,
    ):
        return False
    return all(
        x == y or (math.isnan(x) and math.isnan(y))
        for x, y in zip(a.durations, b.durations)
    )


class TestFrameFormat:
    PAYLOAD = {
        "scalars": {"n": 7, "rho": 0.25, "flag": True, "none": None},
        "array": np.array([1.5, -0.0, np.nan, np.inf, 1e-308]),
        "ints": np.arange(5, dtype=np.int64),
        "nested": [{"x": np.array([2.0**-52])}],
    }

    def test_roundtrip_is_bit_exact(self):
        out = loads_snapshot(dumps_snapshot(self.PAYLOAD, "key"), "key")
        assert out["scalars"] == self.PAYLOAD["scalars"]
        np.testing.assert_array_equal(out["array"], self.PAYLOAD["array"])
        assert out["array"].dtype == np.float64
        # -0.0 keeps its sign bit (array_equal treats -0.0 == 0.0).
        assert math.copysign(1.0, out["array"][1]) == -1.0
        np.testing.assert_array_equal(out["ints"], self.PAYLOAD["ints"])
        np.testing.assert_array_equal(
            out["nested"][0]["x"], self.PAYLOAD["nested"][0]["x"]
        )

    def test_truncation_is_detected(self):
        raw = dumps_snapshot(self.PAYLOAD, "key")
        with pytest.raises(SnapshotError, match="torn"):
            loads_snapshot(raw[:-10], "key")
        with pytest.raises(SnapshotError, match="separator"):
            loads_snapshot(raw.partition(b"\n")[0], "key")
        with pytest.raises(SnapshotError):
            loads_snapshot(b"", "key")

    def test_bit_flip_is_detected(self):
        raw = bytearray(dumps_snapshot(self.PAYLOAD, "key"))
        body_start = raw.index(b"\n") + 1
        raw[body_start + 5] ^= 0x01
        with pytest.raises(SnapshotError, match="checksum"):
            loads_snapshot(bytes(raw), "key")

    def test_version_skew_is_detected(self):
        raw = dumps_snapshot(self.PAYLOAD, "key")
        head, _, body = raw.partition(b"\n")
        header = json.loads(head)
        header["version"] = SNAPSHOT_VERSION + 1
        skewed = json.dumps(header, sort_keys=True).encode() + b"\n" + body
        with pytest.raises(SnapshotError, match="version"):
            loads_snapshot(skewed, "key")

    def test_wrong_kind_and_foreign_file_are_detected(self):
        raw = dumps_snapshot(self.PAYLOAD, "key")
        with pytest.raises(SnapshotError, match="kind"):
            loads_snapshot(raw, "manifest")
        with pytest.raises(SnapshotError):
            loads_snapshot(b'{"some": "json"}\n{}', "key")

    def test_write_read_file_roundtrip(self, tmp_path):
        path = tmp_path / "one.snap"
        write_snapshot(path, self.PAYLOAD, kind="key")
        out = read_snapshot(path, kind="key")
        np.testing.assert_array_equal(out["array"], self.PAYLOAD["array"])
        # Atomic write leaves no temp file behind.
        assert list(tmp_path.iterdir()) == [path]

    def test_missing_file_raises_snapshot_error(self, tmp_path):
        with pytest.raises(SnapshotError, match="cannot read"):
            read_snapshot(tmp_path / "absent.snap", kind="key")

    def test_key_filename_roundtrip(self):
        for key in (
            ("c4.large", "us-east-1b", 0.95),
            ("weird/type", "zone__with__underscores", 0.99),
            ("a b", "c%d", 0.875),
        ):
            name = key_filename(key)
            assert "/" not in name and name.endswith(".snap")
            assert filename_key(name) == key
        with pytest.raises(ValueError):
            filename_key("nonsense")


@pytest.fixture(scope="module")
def warm_service(request):
    """A service with two fitted keys, plus the instants it was fitted at."""
    small_universe = request.getfixturevalue("small_universe")
    service = DraftsService(EC2Api(small_universe), ServiceConfig())
    combo = small_universe.combo("c4.large", "us-east-1b")
    now = small_universe.trace(combo).start + 45 * 86400.0
    keys = [("c4.large", "us-east-1b", 0.95), ("c4.large", "us-east-1c", 0.95)]
    for key in keys:
        assert service.curve(key[0], key[1], key[2], now) is not None
    return small_universe, service, keys, now


class TestServiceCheckpoint:
    def test_roundtrip_restores_curves_and_stays_incremental(
        self, warm_service, tmp_path
    ):
        universe, service, keys, now = warm_service
        info = service.save_state(tmp_path)
        assert info["saved"] == len(keys) and info["skipped"] == 0

        restored = DraftsService(EC2Api(universe), ServiceConfig())
        loaded = restored.load_state(tmp_path)
        assert loaded == {"loaded": len(keys), "skipped": 0, "errors": {}}
        # Same instant: served from the restored cache, bit-identical.
        for key in keys:
            assert curves_equal(
                restored.curve(key[0], key[1], key[2], now),
                service.curve(key[0], key[1], key[2], now),
            )
        # A later instant: the restored predictors delta-fetch (no refit)
        # and still match the uninterrupted service exactly.
        later = now + ServiceConfig().refresh_seconds + 60.0
        for key in keys:
            assert curves_equal(
                restored.curve(key[0], key[1], key[2], later),
                service.curve(key[0], key[1], key[2], later),
            )
        assert restored.cache_info()["cold_fits"] == 0
        assert restored.cache_info()["refits"] == 0
        assert restored.cache_info()["incremental_refreshes"] == len(keys)

    def test_torn_key_file_is_skipped_not_fatal(
        self, warm_service, tmp_path
    ):
        universe, service, keys, now = warm_service
        service.save_state(tmp_path)
        victim = tmp_path / key_filename(keys[0])
        victim.write_bytes(victim.read_bytes()[:-200])

        restored = DraftsService(EC2Api(universe), ServiceConfig())
        loaded = restored.load_state(tmp_path)
        assert loaded["loaded"] == len(keys) - 1
        assert loaded["skipped"] == 1
        assert "torn" in loaded["errors"][victim.name]
        # The damaged key still serves — via a clean cold refit.
        assert restored.curve(keys[0][0], keys[0][1], keys[0][2], now) is not None
        # The damaged key held no restored state, so its fit was a cold one.
        assert restored.cache_info()["cold_fits"] == 1
        assert restored.cache_info()["refits"] == 0

    def test_missing_manifest_loads_nothing(self, warm_service, tmp_path):
        universe = warm_service[0]
        restored = DraftsService(EC2Api(universe), ServiceConfig())
        loaded = restored.load_state(tmp_path / "never-written")
        assert loaded["loaded"] == 0
        assert MANIFEST_NAME in loaded["errors"]

    def test_corrupt_manifest_loads_nothing(self, warm_service, tmp_path):
        universe, service, keys, now = warm_service
        service.save_state(tmp_path)
        (tmp_path / MANIFEST_NAME).write_bytes(b"not a snapshot at all")
        restored = DraftsService(EC2Api(universe), ServiceConfig())
        loaded = restored.load_state(tmp_path)
        assert loaded["loaded"] == 0 and MANIFEST_NAME in loaded["errors"]

    def test_unpublished_probability_is_skipped(self, warm_service, tmp_path):
        universe, service, keys, now = warm_service
        service.save_state(tmp_path)
        narrow = DraftsService(
            EC2Api(universe), ServiceConfig(probabilities=(0.875,))
        )
        loaded = narrow.load_state(tmp_path)
        assert loaded["loaded"] == 0 and loaded["skipped"] == len(keys)
        assert all("probability" in msg for msg in loaded["errors"].values())

    def test_batch_mode_keys_are_skipped_on_save(
        self, warm_service, tmp_path
    ):
        universe, _, keys, now = warm_service
        batch = DraftsService(
            EC2Api(universe), ServiceConfig(incremental=False)
        )
        assert batch.curve(keys[0][0], keys[0][1], keys[0][2], now) is not None
        info = batch.save_state(tmp_path / "batch")
        assert info["saved"] == 0 and info["skipped"] == 1


class TestGatewayLifecycle:
    def _gateway(self, universe, snapshot_dir, clock, **kwargs):
        return ServingGateway(
            DraftsService(EC2Api(universe)),
            GatewayConfig(snapshot_dir=str(snapshot_dir), **kwargs),
            clock=clock,
        )

    def test_warm_start_serves_without_recompute(
        self, small_universe, tmp_path
    ):
        combo = small_universe.combo("c4.large", "us-east-1b")
        now = small_universe.trace(combo).start + 45 * 86400.0
        url = f"/predictions/c4.large/us-east-1b?probability=0.95&now={now}"

        first = self._gateway(small_universe, tmp_path, ManualClock())
        with first:
            body = first.get(url).body
        assert (tmp_path / MANIFEST_NAME).exists()  # stop() checkpointed

        second = self._gateway(small_universe, tmp_path, ManualClock())
        with second:
            response = second.get(url)
        assert response.status == 200 and response.body == body
        counters = second.metrics.snapshot()["counters"]
        # The restored entry is a store hit: zero recomputes after restart.
        assert counters["gateway.hits"] == 1
        assert counters["serving.recomputes"] == 0
        assert second.service.cache_info()["cold_fits"] == 0
        assert second.service.cache_info()["refits"] == 0

    def test_tick_checkpoints_on_the_wall_interval(
        self, small_universe, tmp_path
    ):
        clock = ManualClock()
        gateway = self._gateway(
            small_universe, tmp_path, clock, snapshot_interval_seconds=300.0
        )
        combo = small_universe.combo("c4.large", "us-east-1b")
        now = small_universe.trace(combo).start + 45 * 86400.0
        gateway.get(
            f"/predictions/c4.large/us-east-1b?probability=0.95&now={now}"
        )
        gateway.tick(now)
        assert not (tmp_path / MANIFEST_NAME).exists()  # interval not due
        clock.advance(301.0)
        gateway.tick(now)
        assert (tmp_path / MANIFEST_NAME).exists()
        assert gateway.metrics.counter("gateway.snapshots").value == 1

    def test_snapshot_failure_never_breaks_serving(
        self, small_universe, tmp_path
    ):
        clock = ManualClock()
        blocker = tmp_path / "dir-as-file"
        blocker.write_text("in the way")
        gateway = self._gateway(
            small_universe, blocker / "sub", clock,
            snapshot_interval_seconds=1.0,
        )
        combo = small_universe.combo("c4.large", "us-east-1b")
        now = small_universe.trace(combo).start + 45 * 86400.0
        url = f"/predictions/c4.large/us-east-1b?probability=0.95&now={now}"
        assert gateway.get(url).status == 200
        clock.advance(2.0)
        gateway.tick(now)  # checkpoint attempt fails; serving continues
        assert gateway.metrics.counter("gateway.snapshot_failures").value == 1
        assert gateway.get(url).status == 200

    def test_save_state_requires_a_directory(self, small_universe):
        gateway = ServingGateway(
            DraftsService(EC2Api(small_universe)), clock=ManualClock()
        )
        with pytest.raises(ValueError):
            gateway.save_state()
        with pytest.raises(ValueError):
            gateway.load_state()
