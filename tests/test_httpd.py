"""Socket-server tests: parity with the in-process gateway, keep-alive,
connection shedding, graceful drain."""

from __future__ import annotations

import json
import threading
from http.client import HTTPConnection
from pathlib import Path

import pytest

from repro.cloud.api import EC2Api
from repro.experiments.common import scaled_universe
from repro.service.drafts_service import DraftsService, ServiceConfig
from repro.service.rest import encode_body
from repro.serving.gateway import GatewayConfig, ServingGateway
from repro.serving.httpd import GatewayHTTPServer, HttpdConfig
from repro.serving.loadgen import predictable_keys


@pytest.fixture(scope="module")
def env():
    universe = scaled_universe("test")
    keys, start_now = predictable_keys(universe, 2, 0.95)
    return universe, keys, start_now


def _gateway(universe, config: GatewayConfig | None = None, api=None):
    return ServingGateway(
        DraftsService(
            api or EC2Api(universe), ServiceConfig(probabilities=(0.95,))
        ),
        config or GatewayConfig(),
    )


def _get(address, path):
    """One fresh-connection GET: (status, headers, body bytes)."""
    conn = HTTPConnection(*address, timeout=10)
    try:
        conn.request("GET", path)
        response = conn.getresponse()
        return response.status, dict(response.headers), response.read()
    finally:
        conn.close()


class _GatedApi:
    """History reads block on ``gate`` (and flag ``entered``) — a handle to
    hold a request in flight at a deterministic point."""

    def __init__(self, api, gate, entered):
        self._api = api
        self._gate = gate
        self._entered = entered

    def __getattr__(self, name):
        return getattr(self._api, name)

    def describe_spot_price_history(self, *args, **kwargs):
        self._entered.set()
        assert self._gate.wait(timeout=30)
        return self._api.describe_spot_price_history(*args, **kwargs)


class TestParity:
    """A socket response must carry the same status and a byte-identical
    body as the in-process handler, across every status path."""

    def test_all_status_paths(self, env):
        universe, keys, start_now = env
        (t, z, p), (t2, z2, _) = keys
        early = start_now - 45 * 86400 + 3600
        cases = [
            (200, "/healthz"),
            (200, f"/predictions/{t}/{z}?probability={p}&now={start_now}"),
            (
                200,
                f"/bid/{t}/{z}?probability={p}"
                f"&duration=3600.0&now={start_now}",
            ),
            (
                400,
                f"/predictions/{t}/{z}?probability=abc&now={start_now}",
            ),
            (404, "/nope"),
            (
                404,
                f"/bid/{t}/{z}?probability={p}"
                f"&duration=1e18&now={start_now}",
            ),
            (503, f"/predictions/{t2}/{z2}?probability={p}&now={early}"),
            (
                504,
                f"/predictions/{t}/{z}?probability={p}"
                f"&now={start_now}&deadline=0",
            ),
        ]
        gateway = _gateway(universe)
        with GatewayHTTPServer(gateway, HttpdConfig()) as server:
            for want_status, url in cases:
                expected = gateway.get(url)
                assert expected.status == want_status, url
                status, headers, body = _get(server.address, url)
                assert status == expected.status, url
                assert body == encode_body(expected.body), url
                assert headers["Content-Type"] == "application/json"
                assert int(headers["Content-Length"]) == len(body)
                if "retry_after" in expected.body:
                    assert int(headers["Retry-After"]) >= 1
                else:
                    assert "Retry-After" not in headers

    def test_health_alias_matches_healthz(self, env):
        universe, _keys, _ = env
        gateway = _gateway(universe)
        with GatewayHTTPServer(gateway, HttpdConfig()) as server:
            for path in ("/health", "/healthz"):
                status, _, body = _get(server.address, path)
                assert status == 200
                assert body == encode_body({"status": "ok"})

    def test_gateway_shed_is_byte_identical(self, env):
        """429 from admission control, compared while a request is held
        in flight on the single slot."""
        universe, keys, start_now = env
        t, z, p = keys[0]
        gate, entered = threading.Event(), threading.Event()
        gateway = _gateway(
            universe,
            GatewayConfig(max_inflight=1, retry_after_seconds=2.0),
            api=_GatedApi(EC2Api(universe), gate, entered),
        )
        url = f"/predictions/{t}/{z}?probability={p}&now={start_now}"
        with GatewayHTTPServer(gateway, HttpdConfig()) as server:
            slow: dict = {}

            def hold():
                slow["result"] = _get(server.address, url)

            thread = threading.Thread(target=hold)
            thread.start()
            try:
                assert entered.wait(timeout=10)
                expected = gateway.get(url)
                assert expected.status == 429
                status, headers, body = _get(server.address, url)
                assert status == 429
                assert body == encode_body(expected.body)
                assert headers["Retry-After"] == "2"
            finally:
                gate.set()
                thread.join(timeout=30)
            assert slow["result"][0] == 200

    def test_metrics_route_served(self, env):
        universe, _keys, _ = env
        gateway = _gateway(universe)
        with GatewayHTTPServer(gateway, HttpdConfig()) as server:
            status, _, body = _get(server.address, "/metrics")
            assert status == 200
            snapshot = json.loads(body)
            assert snapshot["counters"]["httpd.requests"] >= 1


class TestConnections:
    def test_keep_alive_reuses_connection(self, env):
        universe, _keys, _ = env
        gateway = _gateway(universe)
        with GatewayHTTPServer(gateway, HttpdConfig()) as server:
            conn = HTTPConnection(*server.address, timeout=10)
            try:
                for _ in range(3):
                    conn.request("GET", "/healthz")
                    response = conn.getresponse()
                    assert response.status == 200
                    response.read()
                    assert (
                        response.headers.get("Connection", "").lower()
                        != "close"
                    )
                counters = json.loads(
                    _get(server.address, "/metrics")[2]
                )["counters"]
                # 3 keep-alive requests rode one connection.
                assert counters["httpd.requests"] >= 3
                assert counters["httpd.connections"] == 2  # conn + /metrics
            finally:
                conn.close()

    def test_connection_overflow_is_shed_as_429(self, env):
        """Beyond max_connections a new connection gets an immediate 429
        with Retry-After, not a silent kernel reset."""
        universe, _keys, _ = env
        gateway = _gateway(universe)
        with GatewayHTTPServer(
            gateway, HttpdConfig(max_connections=1)
        ) as server:
            first = HTTPConnection(*server.address, timeout=10)
            try:
                first.request("GET", "/healthz")
                response = first.getresponse()
                assert response.status == 200
                response.read()  # leave the connection idle keep-alive
                second = HTTPConnection(*server.address, timeout=10)
                try:
                    second.request("GET", "/healthz")
                    response = second.getresponse()
                    assert response.status == 429
                    assert int(response.headers["Retry-After"]) >= 1
                    assert (
                        response.headers.get("Connection", "").lower()
                        == "close"
                    )
                    body = json.loads(response.read())
                    assert "connection" in body["error"]
                finally:
                    second.close()
                # The surviving keep-alive connection still works, and the
                # shed is visible in the metrics.
                first.request("GET", "/metrics")
                response = first.getresponse()
                assert response.status == 200
                counters = json.loads(response.read())["counters"]
                assert counters["httpd.connections_shed"] == 1
            finally:
                first.close()


class TestDrain:
    def test_graceful_drain_finishes_inflight_and_checkpoints(
        self, env, tmp_path
    ):
        """stop(): an in-flight request completes with a full response, and
        the final snapshot (written after the drain) contains its curve."""
        universe, keys, start_now = env
        t, z, p = keys[0]
        gate, entered = threading.Event(), threading.Event()
        snapshot_dir = tmp_path / "snap"
        gateway = _gateway(
            universe,
            GatewayConfig(snapshot_dir=str(snapshot_dir)),
            api=_GatedApi(EC2Api(universe), gate, entered),
        )
        url = f"/predictions/{t}/{z}?probability={p}&now={start_now}"
        server = GatewayHTTPServer(
            gateway, HttpdConfig(drain_timeout_seconds=30)
        )
        server.start()
        slow: dict = {}

        def hold():
            slow["result"] = _get(server.address, url)

        request_thread = threading.Thread(target=hold)
        request_thread.start()
        assert entered.wait(timeout=10)

        stats: dict = {}
        stop_thread = threading.Thread(
            target=lambda: stats.update(server.stop())
        )
        stop_thread.start()
        # The drain must be blocked on the in-flight request, not racing
        # past it.
        stop_thread.join(timeout=0.3)
        assert stop_thread.is_alive()
        gate.set()
        request_thread.join(timeout=30)
        stop_thread.join(timeout=30)
        assert not stop_thread.is_alive()

        status, _, body = slow["result"]
        assert status == 200
        assert json.loads(body)["instance_type"] == t
        assert stats["drained"] is True
        # The post-drain checkpoint observed the request admitted mid-drain.
        snaps = list(Path(snapshot_dir).glob("*.snap"))
        assert len(snaps) >= 1

    def test_stop_closes_idle_connections_and_listener(self, env):
        universe, _keys, _ = env
        gateway = _gateway(universe)
        server = GatewayHTTPServer(gateway, HttpdConfig()).start()
        address = server.address
        idle = HTTPConnection(*address, timeout=10)
        idle.request("GET", "/healthz")
        idle.getresponse().read()
        stats = server.stop()
        assert stats["drained"] is True
        with pytest.raises(OSError):
            probe = HTTPConnection(*address, timeout=1)
            probe.request("GET", "/healthz")
            probe.getresponse()
        idle.close()
