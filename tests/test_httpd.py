"""Socket-server tests: parity with the in-process gateway, keep-alive,
connection shedding, graceful drain — parametrised over the threaded and
asyncio front ends, which must be wire-indistinguishable."""

from __future__ import annotations

import asyncio
import json
import socket
import threading
from http.client import HTTPConnection
from pathlib import Path

import pytest

from repro.cloud.api import EC2Api
from repro.experiments.common import scaled_universe
from repro.service.drafts_service import DraftsService, ServiceConfig
from repro.service.rest import encode_body
from repro.serving.aiohttpd import AsyncGatewayHTTPServer
from repro.serving.gateway import GatewayConfig, ServingGateway
from repro.serving.httpcore import shed_response_bytes
from repro.serving.httpd import GatewayHTTPServer, HttpdConfig
from repro.serving.loadgen import predictable_keys

SERVER_KINDS = {
    "threaded": GatewayHTTPServer,
    "asyncio": AsyncGatewayHTTPServer,
}


@pytest.fixture(params=sorted(SERVER_KINDS))
def server_cls(request):
    return SERVER_KINDS[request.param]


@pytest.fixture(scope="module")
def env():
    universe = scaled_universe("test")
    keys, start_now = predictable_keys(universe, 2, 0.95)
    return universe, keys, start_now


def _gateway(universe, config: GatewayConfig | None = None, api=None):
    return ServingGateway(
        DraftsService(
            api or EC2Api(universe), ServiceConfig(probabilities=(0.95,))
        ),
        config or GatewayConfig(),
    )


def _get(address, path):
    """One fresh-connection GET: (status, headers, body bytes)."""
    conn = HTTPConnection(*address, timeout=10)
    try:
        conn.request("GET", path)
        response = conn.getresponse()
        return response.status, dict(response.headers), response.read()
    finally:
        conn.close()


def _read_until_closed(sock: socket.socket) -> bytes:
    """Drain a socket to EOF (the peer promised Connection: close)."""
    chunks = b""
    while True:
        got = sock.recv(4096)
        if not got:
            return chunks
        chunks += got


def _stop_accepting(server) -> None:
    """Put ``server`` exactly in the drain window: the stop-accepting gate
    has fired, but the listener is still open and :meth:`stop` has not yet
    run — new TCP handshakes land in the kernel backlog unanswered."""
    if isinstance(server, GatewayHTTPServer):
        inner = server._server
        with inner._state:
            inner.draining = True
        inner.shutdown()  # accept loop exits; listener stays open
        return

    async def gate() -> None:
        server._draining = True
        server._accept_task.cancel()
        try:
            await server._accept_task
        except asyncio.CancelledError:
            pass

    asyncio.run_coroutine_threadsafe(gate(), server._loop).result()


class _GatedApi:
    """History reads block on ``gate`` (and flag ``entered``) — a handle to
    hold a request in flight at a deterministic point."""

    def __init__(self, api, gate, entered):
        self._api = api
        self._gate = gate
        self._entered = entered

    def __getattr__(self, name):
        return getattr(self._api, name)

    def describe_spot_price_history(self, *args, **kwargs):
        self._entered.set()
        assert self._gate.wait(timeout=30)
        return self._api.describe_spot_price_history(*args, **kwargs)


class TestParity:
    """A socket response must carry the same status and a byte-identical
    body as the in-process handler, across every status path."""

    def test_all_status_paths(self, env, server_cls):
        universe, keys, start_now = env
        (t, z, p), (t2, z2, _) = keys
        early = start_now - 45 * 86400 + 3600
        cases = [
            (200, "/healthz"),
            (200, f"/predictions/{t}/{z}?probability={p}&now={start_now}"),
            (
                200,
                f"/bid/{t}/{z}?probability={p}"
                f"&duration=3600.0&now={start_now}",
            ),
            (
                400,
                f"/predictions/{t}/{z}?probability=abc&now={start_now}",
            ),
            (404, "/nope"),
            (
                404,
                f"/bid/{t}/{z}?probability={p}"
                f"&duration=1e18&now={start_now}",
            ),
            (503, f"/predictions/{t2}/{z2}?probability={p}&now={early}"),
            (
                504,
                f"/predictions/{t}/{z}?probability={p}"
                f"&now={start_now}&deadline=0",
            ),
        ]
        gateway = _gateway(universe)
        with server_cls(gateway, HttpdConfig()) as server:
            for want_status, url in cases:
                expected = gateway.get(url)
                assert expected.status == want_status, url
                status, headers, body = _get(server.address, url)
                assert status == expected.status, url
                assert body == encode_body(expected.body), url
                assert headers["Content-Type"] == "application/json"
                assert int(headers["Content-Length"]) == len(body)
                if "retry_after" in expected.body:
                    assert int(headers["Retry-After"]) >= 1
                else:
                    assert "Retry-After" not in headers

    def test_repeated_warm_reads_stay_byte_identical(self, env, server_cls):
        """Warm 200s repeat byte-for-byte over one keep-alive connection.

        This is the regression fence for the asyncio encoded-response
        cache: a cache hit must produce the same bytes as a fresh encode,
        and every request must still tick the request accounting (the
        cache elides only the re-serialisation, never the gateway call).
        """
        universe, keys, start_now = env
        (t, z, p), _ = keys
        url = f"/predictions/{t}/{z}?probability={p}&now={start_now}"
        gateway = _gateway(universe)
        with server_cls(gateway, HttpdConfig()) as server:
            conn = HTTPConnection(*server.address, timeout=10)
            try:
                bodies = []
                for _ in range(3):
                    conn.request("GET", url)
                    response = conn.getresponse()
                    assert response.status == 200
                    bodies.append(response.read())
            finally:
                conn.close()
            assert bodies[0] == bodies[1] == bodies[2]
            assert bodies[0] == encode_body(gateway.get(url).body)
            assert gateway.metrics.counter("httpd.requests").value == 3
        universe, _keys, _ = env
        gateway = _gateway(universe)
        with server_cls(gateway, HttpdConfig()) as server:
            for path in ("/health", "/healthz"):
                status, _, body = _get(server.address, path)
                assert status == 200
                assert body == encode_body({"status": "ok"})

    def test_gateway_shed_is_byte_identical(self, env, server_cls):
        """429 from admission control, compared while a request is held
        in flight on the single slot."""
        universe, keys, start_now = env
        t, z, p = keys[0]
        gate, entered = threading.Event(), threading.Event()
        gateway = _gateway(
            universe,
            GatewayConfig(max_inflight=1, retry_after_seconds=2.0),
            api=_GatedApi(EC2Api(universe), gate, entered),
        )
        url = f"/predictions/{t}/{z}?probability={p}&now={start_now}"
        with server_cls(gateway, HttpdConfig()) as server:
            slow: dict = {}

            def hold():
                slow["result"] = _get(server.address, url)

            thread = threading.Thread(target=hold)
            thread.start()
            try:
                assert entered.wait(timeout=10)
                expected = gateway.get(url)
                assert expected.status == 429
                status, headers, body = _get(server.address, url)
                assert status == 429
                assert body == encode_body(expected.body)
                assert headers["Retry-After"] == "2"
            finally:
                gate.set()
                thread.join(timeout=30)
            assert slow["result"][0] == 200

    def test_metrics_route_served(self, env, server_cls):
        universe, _keys, _ = env
        gateway = _gateway(universe)
        with server_cls(gateway, HttpdConfig()) as server:
            status, _, body = _get(server.address, "/metrics")
            assert status == 200
            snapshot = json.loads(body)
            assert snapshot["counters"]["httpd.requests"] >= 1


class TestShedParity:
    """The raw accept-gate shed (written without handler machinery) must be
    wire-compatible with the handler-path 429: same JSON body shape, an
    integer Retry-After, and Connection: close on the shed."""

    def test_shed_429_matches_handler_429(self, env, server_cls):
        universe, keys, start_now = env
        t, z, p = keys[0]
        gate, entered = threading.Event(), threading.Event()
        gateway = _gateway(
            universe,
            GatewayConfig(max_inflight=1, retry_after_seconds=2.0),
            api=_GatedApi(EC2Api(universe), gate, entered),
        )
        url = f"/predictions/{t}/{z}?probability={p}&now={start_now}"
        with server_cls(gateway, HttpdConfig(max_connections=2)) as server:
            slow: dict = {}

            def hold():
                slow["result"] = _get(server.address, url)

            thread = threading.Thread(target=hold)
            thread.start()
            h_conn = HTTPConnection(*server.address, timeout=10)
            try:
                assert entered.wait(timeout=10)
                # Handler-path 429: admitted connection, shed by admission
                # control. Stays open (keep-alive) so it keeps holding the
                # second connection slot while the raw shed happens.
                h_conn.request("GET", url)
                h_response = h_conn.getresponse()
                h_status = h_response.status
                h_headers = dict(h_response.headers)
                h_body = h_response.read()
                assert h_status == 429
                # Raw shed path: third concurrent connection is over
                # max_connections, answered by the canned write.
                raw = socket.create_connection(server.address, timeout=10)
                try:
                    raw.sendall(b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n")
                    shed_wire = _read_until_closed(raw)
                finally:
                    raw.close()
            finally:
                gate.set()
                thread.join(timeout=30)
                h_conn.close()
            assert slow["result"][0] == 200

        # Byte-identical to the shared canned builder.
        assert shed_wire == shed_response_bytes(gateway)
        head, _, shed_payload = shed_wire.partition(b"\r\n\r\n")
        status_line, *header_lines = head.decode("ascii").split("\r\n")
        shed_headers = {
            name.lower(): value
            for name, _, value in (
                line.partition(": ") for line in header_lines
            )
        }
        assert status_line == "HTTP/1.1 429 Too Many Requests"
        assert shed_headers["connection"] == "close"
        # Both paths: integer Retry-After (RFC 9110), same value here.
        assert shed_headers["retry-after"] == "2"
        assert h_headers["Retry-After"] == "2"
        # Same JSON body shape: an error string plus a float retry_after.
        shed_body = json.loads(shed_payload)
        handler_body = json.loads(h_body)
        assert set(shed_body) == set(handler_body) == {"error", "retry_after"}
        assert isinstance(shed_body["retry_after"], float)
        assert isinstance(handler_body["retry_after"], float)
        assert int(shed_headers["content-length"]) == len(shed_payload)


class TestConnections:
    def test_keep_alive_reuses_connection(self, env, server_cls):
        universe, _keys, _ = env
        gateway = _gateway(universe)
        with server_cls(gateway, HttpdConfig()) as server:
            conn = HTTPConnection(*server.address, timeout=10)
            try:
                for _ in range(3):
                    conn.request("GET", "/healthz")
                    response = conn.getresponse()
                    assert response.status == 200
                    response.read()
                    assert (
                        response.headers.get("Connection", "").lower()
                        != "close"
                    )
                counters = json.loads(
                    _get(server.address, "/metrics")[2]
                )["counters"]
                # 3 keep-alive requests rode one connection.
                assert counters["httpd.requests"] >= 3
                assert counters["httpd.connections"] == 2  # conn + /metrics
            finally:
                conn.close()

    def test_connection_overflow_is_shed_as_429(self, env, server_cls):
        """Beyond max_connections a new connection gets an immediate 429
        with Retry-After, not a silent kernel reset."""
        universe, _keys, _ = env
        gateway = _gateway(universe)
        with server_cls(
            gateway, HttpdConfig(max_connections=1)
        ) as server:
            first = HTTPConnection(*server.address, timeout=10)
            try:
                first.request("GET", "/healthz")
                response = first.getresponse()
                assert response.status == 200
                response.read()  # leave the connection idle keep-alive
                second = HTTPConnection(*server.address, timeout=10)
                try:
                    second.request("GET", "/healthz")
                    response = second.getresponse()
                    assert response.status == 429
                    assert int(response.headers["Retry-After"]) >= 1
                    assert (
                        response.headers.get("Connection", "").lower()
                        == "close"
                    )
                    body = json.loads(response.read())
                    assert "connection" in body["error"]
                finally:
                    second.close()
                # The surviving keep-alive connection still works, and the
                # shed is visible in the metrics.
                first.request("GET", "/metrics")
                response = first.getresponse()
                assert response.status == 200
                counters = json.loads(response.read())["counters"]
                assert counters["httpd.connections_shed"] == 1
            finally:
                first.close()


class TestDrain:
    def test_graceful_drain_finishes_inflight_and_checkpoints(
        self, env, tmp_path, server_cls
    ):
        """stop(): an in-flight request completes with a full response, and
        the final snapshot (written after the drain) contains its curve."""
        universe, keys, start_now = env
        t, z, p = keys[0]
        gate, entered = threading.Event(), threading.Event()
        snapshot_dir = tmp_path / "snap"
        gateway = _gateway(
            universe,
            GatewayConfig(snapshot_dir=str(snapshot_dir)),
            api=_GatedApi(EC2Api(universe), gate, entered),
        )
        url = f"/predictions/{t}/{z}?probability={p}&now={start_now}"
        server = server_cls(
            gateway, HttpdConfig(drain_timeout_seconds=30)
        )
        server.start()
        slow: dict = {}

        def hold():
            slow["result"] = _get(server.address, url)

        request_thread = threading.Thread(target=hold)
        request_thread.start()
        assert entered.wait(timeout=10)

        stats: dict = {}
        stop_thread = threading.Thread(
            target=lambda: stats.update(server.stop())
        )
        stop_thread.start()
        # The drain must be blocked on the in-flight request, not racing
        # past it.
        stop_thread.join(timeout=0.3)
        assert stop_thread.is_alive()
        gate.set()
        request_thread.join(timeout=30)
        stop_thread.join(timeout=30)
        assert not stop_thread.is_alive()

        status, _, body = slow["result"]
        assert status == 200
        assert json.loads(body)["instance_type"] == t
        assert stats["drained"] is True
        # The post-drain checkpoint observed the request admitted mid-drain.
        snaps = list(Path(snapshot_dir).glob("*.snap"))
        assert len(snaps) >= 1

    def test_stop_closes_idle_connections_and_listener(self, env, server_cls):
        universe, _keys, _ = env
        gateway = _gateway(universe)
        server = server_cls(gateway, HttpdConfig()).start()
        address = server.address
        idle = HTTPConnection(*address, timeout=10)
        idle.request("GET", "/healthz")
        idle.getresponse().read()
        stats = server.stop()
        assert stats["drained"] is True
        with pytest.raises(OSError):
            probe = HTTPConnection(*address, timeout=1)
            probe.request("GET", "/healthz")
            probe.getresponse()
        idle.close()

    def test_connection_in_drain_window_gets_shed_not_reset(
        self, env, server_cls
    ):
        """A client whose handshake lands in the kernel backlog after the
        stop-accepting gate (but before the listener closes) must receive
        the canned 429 + Connection: close, not a connection reset."""
        universe, _keys, _ = env
        gateway = _gateway(universe)
        server = server_cls(gateway, HttpdConfig()).start()
        _stop_accepting(server)
        # The accept loop is gone but the listener is open: this handshake
        # completes in the kernel backlog and nothing will ever accept it.
        raw = socket.create_connection(server.address, timeout=10)
        try:
            raw.settimeout(10)
            raw.sendall(b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n")
            stats = server.stop()
            wire = _read_until_closed(raw)
        finally:
            raw.close()
        assert stats["backlog_shed"] == 1
        assert wire == shed_response_bytes(gateway)
