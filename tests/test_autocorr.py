"""Unit tests for the autocorrelation compensation."""

import numpy as np
import pytest

from repro.core.autocorr import effective_sample_size, exceedance_autocorr
from repro.util.stats import lag1_autocorr


class TestEffectiveSampleSize:
    def test_independent_series_unchanged(self):
        assert effective_sample_size(1000, 0.0) == 1000

    def test_positive_rho_shrinks(self):
        assert effective_sample_size(1000, 0.5) == 333
        assert effective_sample_size(1000, 0.9) < 100

    def test_negative_rho_clamped(self):
        # Anticorrelation must never *loosen* the bound.
        assert effective_sample_size(1000, -0.8) == 1000

    def test_extreme_rho_keeps_one(self):
        assert effective_sample_size(5, 0.999) >= 1

    def test_zero_n(self):
        assert effective_sample_size(0, 0.5) == 0

    def test_negative_n_rejected(self):
        with pytest.raises(ValueError):
            effective_sample_size(-1, 0.5)

    def test_formula(self):
        n, rho = 800, 0.3
        expected = int(np.floor(n * (1 - rho) / (1 + rho)))
        assert effective_sample_size(n, rho) == expected


class TestExceedanceAutocorr:
    def test_constant_indicator_is_zero(self, rng):
        x = rng.normal(size=200)
        # Threshold above everything: the indicator is constant.
        assert exceedance_autocorr(x, x.max() + 1.0) == 0.0

    def test_clustered_exceedances_positive(self):
        # Exceedances in one contiguous block: strong positive dependence.
        x = np.zeros(200)
        x[80:120] = 10.0
        assert exceedance_autocorr(x, 5.0) > 0.5

    def test_alternating_exceedances_negative(self):
        x = np.tile([0.0, 10.0], 100)
        assert exceedance_autocorr(x, 5.0) < -0.5

    def test_iid_near_zero(self, rng):
        x = rng.normal(size=5000)
        rho = exceedance_autocorr(x, 1.0)
        assert abs(rho) < 0.08


class TestLag1Autocorr:
    def test_short_series(self):
        assert lag1_autocorr(np.array([1.0, 2.0])) == 0.0

    def test_ar1_recovery(self, rng):
        phi = 0.7
        x = np.empty(20000)
        x[0] = 0.0
        eps = rng.normal(size=20000)
        for i in range(1, 20000):
            x[i] = phi * x[i - 1] + eps[i]
        assert lag1_autocorr(x) == pytest.approx(phi, abs=0.03)
