"""Unit tests for the deterministic load generator."""

import collections

import numpy as np
import pytest

from repro.serving.loadgen import LoadgenConfig, LoadGenerator

KEYS = [
    ("c4.large", "us-east-1b", 0.95),
    ("m3.medium", "us-east-1c", 0.95),
    ("c3.2xlarge", "us-west-1a", 0.95),
    ("r3.large", "eu-west-1a", 0.95),
    ("c4.xlarge", "us-east-1d", 0.95),
]


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            LoadgenConfig(n_requests=0)
        with pytest.raises(ValueError):
            LoadgenConfig(mode="burst")
        with pytest.raises(ValueError):
            LoadgenConfig(zipf_exponent=-1)
        with pytest.raises(ValueError):
            LoadgenConfig(bid_fraction=1.5)
        with pytest.raises(ValueError):
            LoadGenerator([], LoadgenConfig())


class TestDeterminism:
    def test_same_seed_same_stream(self):
        config = LoadgenConfig(n_requests=200, seed=42, bid_fraction=0.5)
        a = [r.url for r in LoadGenerator(KEYS, config).requests()]
        b = [r.url for r in LoadGenerator(KEYS, config).requests()]
        assert a == b

    def test_different_seed_different_stream(self):
        a = [
            r.url
            for r in LoadGenerator(
                KEYS, LoadgenConfig(n_requests=200, seed=1)
            ).requests()
        ]
        b = [
            r.url
            for r in LoadGenerator(
                KEYS, LoadgenConfig(n_requests=200, seed=2)
            ).requests()
        ]
        assert a != b


class TestShape:
    def test_zipf_skew_prefers_low_ranks(self):
        config = LoadgenConfig(n_requests=3000, seed=3, zipf_exponent=1.5)
        counts = collections.Counter(
            r.key for r in LoadGenerator(KEYS, config).requests()
        )
        assert counts[KEYS[0]] > counts[KEYS[-1]]
        assert counts[KEYS[0]] > 3000 / len(KEYS)  # far above uniform share

    def test_zero_exponent_is_roughly_uniform(self):
        generator = LoadGenerator(
            KEYS, LoadgenConfig(n_requests=5000, seed=3, zipf_exponent=0.0)
        )
        assert np.allclose(generator.key_weights(), 1.0 / len(KEYS))

    def test_weights_sum_to_one(self):
        generator = LoadGenerator(KEYS, LoadgenConfig(zipf_exponent=1.1))
        assert generator.key_weights().sum() == pytest.approx(1.0)

    def test_bid_fraction_mix(self):
        config = LoadgenConfig(n_requests=2000, seed=5, bid_fraction=0.3)
        urls = [r.url for r in LoadGenerator(KEYS, config).requests()]
        bid_share = sum(u.startswith("/bid/") for u in urls) / len(urls)
        assert 0.25 < bid_share < 0.35
        assert all(
            u.startswith("/bid/") or u.startswith("/predictions/")
            for u in urls
        )

    def test_now_drift_advances_simulation_time(self):
        config = LoadgenConfig(
            n_requests=10, seed=1, start_now=1000.0, now_drift=5.0
        )
        nows = [r.now for r in LoadGenerator(KEYS, config).requests()]
        assert nows == [1000.0 + 5.0 * i for i in range(10)]


class TestArrivals:
    def test_closed_loop_has_zero_offsets(self):
        requests = list(
            LoadGenerator(KEYS, LoadgenConfig(n_requests=50, seed=1)).requests()
        )
        assert all(r.arrival == 0.0 for r in requests)

    def test_open_loop_arrivals_increase_at_rate(self):
        config = LoadgenConfig(
            n_requests=4000, seed=9, mode="open", arrival_rate=100.0
        )
        arrivals = [r.arrival for r in LoadGenerator(KEYS, config).requests()]
        assert all(b > a for a, b in zip(arrivals, arrivals[1:]))
        # Mean inter-arrival ~ 1/rate.
        mean_gap = arrivals[-1] / len(arrivals)
        assert mean_gap == pytest.approx(0.01, rel=0.1)
