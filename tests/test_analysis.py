"""Unit tests for the price-dynamics analysis package."""

import numpy as np
import pytest

from repro.analysis import (
    compare_traces,
    diagnose_ar1,
    episodes_above,
    fit_ar1,
    stylized_facts,
)
from repro.market.agents import PopulationConfig
from repro.market.simulator import MarketSimulator
from repro.market.supply import ConstantSupply
from repro.market.synthetic import generate_trace
from repro.market.traces import PriceTrace


class TestEpisodes:
    def test_detection(self):
        trace = PriceTrace(
            times=np.arange(8, dtype=float) * 300.0,
            prices=np.array([0.1, 0.5, 0.6, 0.1, 0.1, 0.7, 0.1, 0.1]),
        )
        eps = episodes_above(trace, 0.5)
        assert len(eps) == 2
        assert (eps[0].start_idx, eps[0].end_idx) == (1, 3)
        assert eps[0].duration == 600.0
        assert eps[0].peak == 0.6
        assert (eps[1].start_idx, eps[1].end_idx) == (5, 6)

    def test_open_final_episode(self):
        trace = PriceTrace(
            times=np.arange(4, dtype=float) * 300.0,
            prices=np.array([0.1, 0.1, 0.9, 0.9]),
        )
        eps = episodes_above(trace, 0.5)
        assert len(eps) == 1
        assert eps[0].duration == pytest.approx(300.0)

    def test_no_episodes(self):
        trace = PriceTrace(
            times=np.arange(3, dtype=float), prices=np.full(3, 0.1)
        )
        assert episodes_above(trace, 0.5) == []


class TestStylizedFacts:
    def test_facts_on_known_classes(self):
        od = 0.42
        spiky = stylized_facts(
            generate_trace("spiky", od, n_epochs=90 * 288, rng=1), od
        )
        calm = stylized_facts(
            generate_trace("calm", od, n_epochs=90 * 288, rng=1), od
        )
        premium = stylized_facts(
            generate_trace("premium", od, n_epochs=90 * 288, rng=1), od
        )
        assert spiky.mean_update_gap == pytest.approx(300.0)
        # Spiky: deep discount with rare long episodes above On-demand.
        assert spiky.discount > 0.5
        assert 0 < spiky.fraction_above_ondemand < 0.05
        assert spiky.episodes_above_ondemand >= 1
        assert spiky.mean_episode_seconds >= 3600.0
        # Calm: never above On-demand, sticky floor.
        assert calm.fraction_above_ondemand == 0.0
        assert calm.floor_occupancy > 0.2
        # Premium: always above On-demand, tiny discount (negative).
        assert premium.fraction_above_ondemand == 1.0
        assert premium.discount < 0.0

    def test_validation(self):
        trace = PriceTrace(np.arange(3, dtype=float), np.full(3, 0.1))
        with pytest.raises(ValueError):
            stylized_facts(trace, 0.0)


class TestAR1Diagnostics:
    def test_recovers_parameters(self, rng):
        phi, mu, sigma = 0.8, 2.0, 0.05
        n = 8000
        x = np.empty(n)
        x[0] = mu
        eps = rng.normal(0, sigma, n)
        for i in range(1, n):
            x[i] = mu + phi * (x[i - 1] - mu) + eps[i]
        fit = fit_ar1(x)
        assert fit.phi == pytest.approx(phi, abs=0.03)
        assert fit.mu == pytest.approx(mu, abs=0.05)
        assert fit.sigma == pytest.approx(sigma, rel=0.1)

    def test_gaussian_ar1_diagnosed_well_modelled(self, rng):
        phi, sigma = 0.7, 0.01
        n = 4000
        x = np.zeros(n)
        eps = rng.normal(0, sigma, n)
        for i in range(1, n):
            x[i] = phi * x[i - 1] + eps[i]
        assert diagnose_ar1(x).well_modelled

    def test_spiky_series_rejected(self):
        """The paper's point: spiky series are not AR(1) (§4.1.3)."""
        trace = generate_trace("spiky", 0.42, n_epochs=20_000, rng=2)
        diagnosis = diagnose_ar1(trace.prices)
        assert not diagnosis.well_modelled
        assert diagnosis.normality_pvalue < 0.01

    def test_short_series_rejected(self):
        with pytest.raises(ValueError):
            fit_ar1(np.ones(4))


class TestCompare:
    def test_auction_and_synthetic_share_core_facts(self, rng):
        """The mechanistic simulator backs the statistical substitution:
        both produce sticky, positive, quantised, autocorrelated prices."""
        sim = MarketSimulator(
            PopulationConfig(
                arrival_rate=6.0, base_valuation=0.06, strategic_fraction=0.4
            ),
            ConstantSupply(40),
            reserve_price=0.02,
            rng=rng,
        )
        mech = sim.run(3000).trace
        synth = generate_trace("calm", 0.42, n_epochs=3000, rng=1)
        comparison = compare_traces(mech, synth, ondemand_price=0.42)
        pairs = comparison.shared_qualities()
        assert set(pairs) >= {"autocorr", "discount", "floor_occupancy"}
        # Both sources are strongly autocorrelated and price below OD.
        assert pairs["autocorr"][0] > 0.2 and pairs["autocorr"][1] > 0.2
        assert pairs["fraction_above_ondemand"][0] < 0.5
        assert comparison.agreement("mean_update_gap", rel_tol=0.01)

    def test_agreement_tolerance(self):
        synth = generate_trace("calm", 0.42, n_epochs=1000, rng=1)
        comparison = compare_traces(synth, synth, 0.42)
        for fact in ("discount", "autocorr", "cv", "range_ratio"):
            assert comparison.agreement(fact, rel_tol=1e-9)
