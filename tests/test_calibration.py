"""Unit tests for trace calibration and classification."""

import numpy as np
import pytest

from repro.market.calibration import calibrate, classify
from repro.market.synthetic import generate_trace

OD = 0.42
EPD = 288


class TestCalibrate:
    def test_recovers_base_level(self):
        trace = generate_trace("calm", OD, n_epochs=60 * EPD, rng=4)
        result = calibrate(trace, OD)
        assert result.params.base_level == pytest.approx(0.15, rel=0.15)

    def test_recovers_plateau_structure(self):
        trace = generate_trace("spiky", OD, n_epochs=90 * EPD, rng=4)
        result = calibrate(trace, OD)
        params = result.params
        # Episodes detected with roughly the configured level and length.
        assert params.spike_rate > 0
        assert params.spike_level == pytest.approx(1.25, rel=0.35)
        assert params.spike_mean_epochs >= 24  # multi-hour plateaus

    def test_recovers_floor_pinning(self):
        trace = generate_trace("calm", OD, n_epochs=60 * EPD, rng=4)
        result = calibrate(trace, OD)
        assert result.params.floor_level > 0  # detected the reserve floor

    def test_roundtrip_through_generator(self):
        """Generating from calibrated params reproduces the key facts."""
        from repro.analysis.stylized import stylized_facts
        from repro.market.synthetic import ClassParams
        from repro.market.traces import PriceTrace
        from repro.util.timeutils import EPOCH_SECONDS

        original = generate_trace("spiky", OD, n_epochs=90 * EPD, rng=4)
        params = calibrate(original, OD).params
        # Re-generate with the recovered parameters via the private engine.
        from repro.market import synthetic

        rng = np.random.default_rng(9)
        fluct = synthetic._ar1(rng, 90 * EPD, params)
        base = params.base_level * np.ones(90 * EPD)
        rel = base * np.exp(fluct)
        rel = np.maximum(rel, synthetic._episode_levels(rng, 90 * EPD, params))
        if params.floor_level > 0:
            rel = np.maximum(rel, params.floor_level)
        regen = PriceTrace(
            np.arange(90 * EPD) * EPOCH_SECONDS,
            np.round(rel * OD, 4).clip(min=1e-4),
        )
        a = stylized_facts(original, OD)
        b = stylized_facts(regen, OD)
        assert b.discount == pytest.approx(a.discount, abs=0.15)
        assert b.fraction_above_ondemand == pytest.approx(
            a.fraction_above_ondemand, abs=0.03
        )

    def test_validation(self):
        trace = generate_trace("calm", OD, n_epochs=600, rng=1)
        with pytest.raises(ValueError):
            calibrate(trace, 0.0)


class TestClassify:
    @pytest.mark.parametrize(
        "cls", ["calm", "spiky", "volatile", "premium"]
    )
    def test_self_classification(self, cls):
        """Traces generated from a class map back to it (or a neighbour
        with the same Table 1 behaviour)."""
        acceptable = {
            "calm": {"calm", "diurnal"},
            "spiky": {"spiky"},
            "volatile": {"volatile"},
            "premium": {"premium"},
        }[cls]
        hits = 0
        for seed in range(3):
            trace = generate_trace(cls, OD, n_epochs=60 * EPD, rng=seed)
            if classify(trace, OD) in acceptable:
                hits += 1
        assert hits >= 2
