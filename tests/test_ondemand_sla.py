"""Unit tests for the On-demand tier and the availability SLA model."""

import pytest

from repro.cloud.ondemand import AvailabilitySLA, OnDemandTier, SLAAccount


class TestAvailabilitySLA:
    def test_refund_tiers_match_paper(self):
        """§4.1.2: 10 % below 99.95 %, 30 % at or below 99 %."""
        sla = AvailabilitySLA()
        assert sla.refund_fraction(1.0) == 0.0
        assert sla.refund_fraction(0.9995) == 0.0
        assert sla.refund_fraction(0.9994) == 0.10
        assert sla.refund_fraction(0.99) == 0.30
        assert sla.refund_fraction(0.5) == 0.30

    def test_validation(self):
        with pytest.raises(ValueError):
            AvailabilitySLA().refund_fraction(1.5)


class TestSLAAccount:
    def test_availability_accounting(self):
        account = SLAAccount()
        account.record_outage(0.0005 * account.month_seconds)
        assert account.availability() == pytest.approx(0.9995)

    def test_refund_computation(self):
        account = SLAAccount()
        account.record_outage(0.02 * account.month_seconds)
        refund = account.refund(AvailabilitySLA(), monthly_cost=100.0)
        assert refund == pytest.approx(30.0)

    def test_outage_clamped_to_month(self):
        account = SLAAccount(month_seconds=100.0)
        account.record_outage(1000.0)
        assert account.availability() == 0.0

    def test_negative_outage_rejected(self):
        with pytest.raises(ValueError):
            SLAAccount().record_outage(-1.0)

    def test_cumulative_sla_gives_no_durability(self):
        """The paper's §3 point: a 99% *cumulative* SLA can be satisfied by
        an availability pattern that never provides 100 continuous seconds.
        """
        account = SLAAccount(month_seconds=30 * 86400.0)
        window = 100.0
        n_windows = int(account.month_seconds / window)
        for _ in range(n_windows):
            account.record_outage(1.0)  # one second per 100-second window
        # Cumulative availability still meets a 99 % target...
        assert account.availability() >= 0.99
        assert AvailabilitySLA().refund_fraction(account.availability()) <= 0.30
        # ...while the longest uninterrupted run is under 100 seconds:
        # durability for any 100-second request is zero. (The arithmetic is
        # the demonstration; no instance model needed.)
        longest_continuous = window - 1.0
        assert longest_continuous < window


class TestOnDemandTier:
    def test_pricing(self):
        tier = OnDemandTier(0.175)
        assert tier.hourly_price == 0.175
        assert tier.cost_of(90 * 60.0) == pytest.approx(0.35)
        charge = tier.run(10.0)
        assert charge.hours == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            OnDemandTier(0.0)
