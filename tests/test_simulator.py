"""Unit tests for the mechanistic market simulator."""

import numpy as np
import pytest

from repro.market.agents import PopulationConfig
from repro.market.simulator import MarketSimulator
from repro.market.supply import ConstantSupply, ShockSupply
from repro.util.timeutils import EPOCH_SECONDS


def _sim(rng, supply=None, **pop_kwargs):
    population = PopulationConfig(
        arrival_rate=6.0, base_valuation=0.2, **pop_kwargs
    )
    return MarketSimulator(
        population=population,
        supply=supply or ConstantSupply(units=40),
        reserve_price=0.02,
        rng=rng,
    )


class TestSimulator:
    def test_trace_shape_and_epoch_grid(self, rng):
        result = _sim(rng).run(200, start_time=1000.0, instance_type="x.y", zone="us-east-1b")
        trace = result.trace
        assert len(trace) == 200
        assert trace.start == 1000.0
        np.testing.assert_allclose(np.diff(trace.times), EPOCH_SECONDS)
        assert trace.instance_type == "x.y"
        assert result.supply_series.shape == (200,)
        assert result.demand_series.shape == (200,)

    def test_prices_positive_and_at_least_reserve(self, rng):
        result = _sim(rng).run(300)
        assert np.all(result.trace.prices >= 0.02 - 1e-9)

    def test_supply_shock_raises_price(self, rng):
        shock = ShockSupply(
            baseline=40, floor=3, shock_prob=0.01, mean_length=20.0
        )
        result = _sim(rng, supply=shock).run(2000)
        prices = result.trace.prices
        shocked = result.supply_series == 3
        assert shocked.any() and (~shocked).any()
        assert prices[shocked].mean() > prices[~shocked].mean()

    def test_scarce_supply_prices_higher(self, rng):
        import numpy as np

        scarce = _sim(np.random.default_rng(1), supply=ConstantSupply(5)).run(500)
        ample = _sim(np.random.default_rng(1), supply=ConstantSupply(200)).run(500)
        assert scarce.trace.prices.mean() > ample.trace.prices.mean()

    def test_deterministic_given_rng(self):
        import numpy as np

        a = _sim(np.random.default_rng(9)).run(100)
        b = _sim(np.random.default_rng(9)).run(100)
        np.testing.assert_array_equal(a.trace.prices, b.trace.prices)

    def test_autocorrelated_prices(self, rng):
        """Strategic bidders make the price sticky, as real traces are."""
        from repro.util.stats import lag1_autocorr

        result = _sim(rng, strategic_fraction=0.4).run(1500)
        assert lag1_autocorr(result.trace.prices) > 0.3

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            _sim(rng).run(0)
        with pytest.raises(ValueError):
            MarketSimulator(
                PopulationConfig(), ConstantSupply(1), reserve_price=0.0, rng=rng
            )
