"""Unit tests for AZ-name obfuscation and deobfuscation."""

import numpy as np
import pytest

from repro.market.obfuscation import AccountView, deobfuscate, trace_similarity
from repro.market.synthetic import generate_trace


class TestAccountView:
    def test_roundtrip(self):
        view = AccountView("us-east-1", {"a": "c", "b": "a", "c": "b"})
        assert view.to_physical("us-east-1a") == "us-east-1c"
        assert view.to_local("us-east-1c") == "us-east-1a"
        for letter in "abc":
            name = f"us-east-1{letter}"
            assert view.to_local(view.to_physical(name)) == name

    def test_must_be_permutation(self):
        with pytest.raises(ValueError):
            AccountView("us-east-1", {"a": "c", "b": "c"})

    def test_unknown_zone(self):
        view = AccountView("us-east-1", {"a": "a"})
        with pytest.raises(KeyError):
            view.to_physical("us-west-1a")
        with pytest.raises(KeyError):
            view.to_physical("us-east-1z")

    def test_random_views_differ_across_accounts(self):
        letters = ("a", "b", "c", "d", "e")
        views = [
            AccountView.random("us-east-1", letters, rng=seed)
            for seed in range(12)
        ]
        mappings = {tuple(sorted(v.mapping.items())) for v in views}
        assert len(mappings) > 1


class TestSimilarity:
    def test_identical_traces_score_one(self):
        t = generate_trace("calm", 0.1, n_epochs=500, rng=1)
        assert trace_similarity(t, t) == pytest.approx(1.0)

    def test_different_traces_score_lower(self):
        a = generate_trace("calm", 0.1, n_epochs=500, rng=1)
        b = generate_trace("volatile", 0.1, n_epochs=500, rng=2)
        assert trace_similarity(a, b) < trace_similarity(a, a)

    def test_scale_free(self):
        a = generate_trace("volatile", 0.1, n_epochs=500, rng=1)
        b = generate_trace("volatile", 10.0, n_epochs=500, rng=2)
        c = generate_trace("volatile", 10.0, n_epochs=500, rng=3)
        # Cross-scale comparison must not be dominated by the price level.
        assert trace_similarity(b, c) != pytest.approx(0.0)
        assert trace_similarity(a, b) < 1.0

    def test_no_overlap_rejected(self):
        a = generate_trace("calm", 0.1, n_epochs=10, rng=1)
        b = generate_trace("calm", 0.1, n_epochs=10, rng=1, start_time=1e9)
        with pytest.raises(ValueError):
            trace_similarity(a, b)


class TestDeobfuscation:
    def test_recovers_permutation(self):
        letters = ("a", "b", "c", "d")
        # Physical traces: one per zone, distinct dynamics.
        physical = {
            f"us-east-1{letter}": generate_trace(
                cls, 0.2, n_epochs=2000, rng=i
            )
            for i, (letter, cls) in enumerate(
                zip(letters, ("calm", "volatile", "spiky", "regime"))
            )
        }
        view = AccountView.random("us-east-1", letters, rng=99)
        local = {
            view.to_local(zone): trace for zone, trace in physical.items()
        }
        mapping = deobfuscate(local, physical)
        for local_name, physical_name in mapping.items():
            assert view.to_physical(local_name) == physical_name

    def test_bijection_guaranteed(self):
        # Two nearly identical zones: greedy matching must still produce a
        # bijection rather than mapping both local zones to one service zone.
        a = generate_trace("calm", 0.2, n_epochs=1000, rng=5)
        b = generate_trace("calm", 0.2, n_epochs=1000, rng=5)
        service = {"us-east-1a": a, "us-east-1b": b}
        local = {"us-east-1a": b, "us-east-1b": a}
        mapping = deobfuscate(local, service)
        assert sorted(mapping.values()) == ["us-east-1a", "us-east-1b"]

    def test_size_mismatch_rejected(self):
        t = generate_trace("calm", 0.1, n_epochs=100, rng=0)
        with pytest.raises(ValueError):
            deobfuscate({"us-east-1a": t}, {})
