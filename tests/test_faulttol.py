"""Unit tests for the checkpointing policies and the batch executor."""

import math

import numpy as np
import pytest

from repro.faulttol import (
    HorizonGuidedCheckpoint,
    NoCheckpoint,
    PeriodicCheckpoint,
    SpotBatchExecutor,
    estimate_mttf,
    make_drafts_executor,
    make_naive_executor,
    make_reactive_executor,
    youngdaly_interval,
)
from repro.market.traces import PriceTrace


def _flat_trace(n=200, price=0.1, kill_at=None):
    prices = np.full(n, price)
    if kill_at is not None:
        prices[kill_at] = 10.0
    return PriceTrace(np.arange(n, dtype=float) * 300.0, prices)


class TestPolicies:
    def test_young_daly_formula(self):
        assert youngdaly_interval(mttf=7200.0, checkpoint_cost=100.0) == (
            pytest.approx(math.sqrt(2 * 100 * 7200))
        )
        with pytest.raises(ValueError):
            youngdaly_interval(0.0, 1.0)
        with pytest.raises(ValueError):
            youngdaly_interval(1.0, 0.0)

    def test_no_checkpoint(self):
        assert NoCheckpoint().next_checkpoint(0.0, 0.0) == math.inf

    def test_periodic(self):
        policy = PeriodicCheckpoint(interval=600.0)
        assert policy.next_checkpoint(0.0, 0.0) == 600.0
        assert policy.next_checkpoint(0.0, 600.0) == 1200.0
        with pytest.raises(ValueError):
            PeriodicCheckpoint(interval=0.0)

    def test_horizon_guided(self):
        policy = HorizonGuidedCheckpoint(horizon=10_000.0, safety=0.9)
        first = policy.next_checkpoint(1000.0, 1000.0)
        assert first == pytest.approx(10_000.0)  # 1000 + 0.9 * 10000
        second = policy.next_checkpoint(1000.0, first)
        assert second == pytest.approx(first + 9000.0)
        with pytest.raises(ValueError):
            HorizonGuidedCheckpoint(horizon=0.0)
        with pytest.raises(ValueError):
            HorizonGuidedCheckpoint(horizon=10.0, safety=0.0)


class TestExecutor:
    def test_completes_without_failures(self):
        trace = _flat_trace()
        ex = SpotBatchExecutor(
            trace,
            bid_fn=lambda now: (0.2, float("nan")),
            policy_fn=lambda certified: NoCheckpoint(),
        )
        report = ex.run(start=0.0, total_work=4 * 3600.0)
        assert report.completed
        assert report.work_done == 4 * 3600.0
        assert report.restarts == 0
        assert report.checkpoints == 0
        assert report.makespan == pytest.approx(4 * 3600.0)
        assert report.cost == pytest.approx(0.4)  # 4 hours at 0.1
        assert report.efficiency == pytest.approx(1.0)

    def test_revocation_without_checkpoints_loses_everything(self):
        trace = _flat_trace(n=400, kill_at=48)  # spike 4 h in
        ex = SpotBatchExecutor(
            trace,
            bid_fn=lambda now: (0.2, float("nan")),
            policy_fn=lambda certified: NoCheckpoint(),
            resubmit_delay=300.0,
        )
        report = ex.run(start=0.0, total_work=6 * 3600.0)
        assert report.completed
        assert report.restarts == 1
        assert report.work_lost == pytest.approx(48 * 300.0)
        # Everything re-done after the kill: makespan > work.
        assert report.makespan > 6 * 3600.0

    def test_checkpoints_preserve_work(self):
        trace = _flat_trace(n=400, kill_at=48)
        ex = SpotBatchExecutor(
            trace,
            bid_fn=lambda now: (0.2, float("nan")),
            policy_fn=lambda certified: PeriodicCheckpoint(interval=3600.0),
            checkpoint_cost=60.0,
            resubmit_delay=300.0,
        )
        report = ex.run(start=0.0, total_work=6 * 3600.0)
        assert report.completed
        assert report.restarts == 1
        assert report.checkpoints >= 5
        # At most one interval of work lost (plus nothing else).
        assert report.work_lost <= 3600.0 + 1e-6
        assert report.checkpoint_overhead == 60.0 * report.checkpoints

    def test_rejected_launches_retry(self):
        # Price above the bid for the first 10 epochs.
        prices = np.full(300, 0.5)
        prices[10:] = 0.05
        trace = PriceTrace(np.arange(300, dtype=float) * 300.0, prices)
        ex = SpotBatchExecutor(
            trace,
            bid_fn=lambda now: (0.2, float("nan")),
            policy_fn=lambda certified: NoCheckpoint(),
            resubmit_delay=600.0,
        )
        report = ex.run(start=0.0, total_work=3600.0)
        assert report.completed
        assert report.rejections >= 4

    def test_incomplete_when_trace_ends(self):
        trace = _flat_trace(n=20)  # only ~1.6 hours of market
        ex = SpotBatchExecutor(
            trace,
            bid_fn=lambda now: (0.2, float("nan")),
            policy_fn=lambda certified: NoCheckpoint(),
        )
        report = ex.run(start=0.0, total_work=100 * 3600.0)
        assert not report.completed

    def test_validation(self):
        trace = _flat_trace()
        with pytest.raises(ValueError):
            SpotBatchExecutor(
                trace, lambda n: (0.2, 0.0), lambda c: NoCheckpoint(),
                checkpoint_cost=-1.0,
            )
        ex = SpotBatchExecutor(
            trace, lambda n: (0.2, 0.0), lambda c: NoCheckpoint()
        )
        with pytest.raises(ValueError):
            ex.run(0.0, 0.0)


class TestStrategies:
    def test_mttf_estimate(self):
        prices = np.full(100, 0.1)
        prices[20] = 0.5
        prices[60] = 0.5
        trace = PriceTrace(np.arange(100, dtype=float) * 300.0, prices)
        observed_span = trace.slice(trace.start, 99 * 300.0).span
        mttf = estimate_mttf(trace, 0.4, upto=99 * 300.0)
        # Two crossings over the observed span.
        assert mttf == pytest.approx(observed_span / 2)
        # No crossings: the whole observed span.
        assert estimate_mttf(trace, 1.0, upto=99 * 300.0) == pytest.approx(
            observed_span
        )

    def test_three_strategies_complete_on_spiky_pool(self, spiky_trace):
        start = spiky_trace.start + 30 * 86400.0
        work = 6 * 3600.0
        naive = make_naive_executor(spiky_trace, ondemand_price=0.42)
        reactive = make_reactive_executor(
            spiky_trace, ondemand_price=0.42, start=start
        )
        drafts = make_drafts_executor(spiky_trace, total_work=work)
        reports = {
            "naive": naive.run(start, work),
            "reactive": reactive.run(start, work),
            "drafts": drafts.run(start, work),
        }
        for name, report in reports.items():
            assert report.completed, name
        # DrAFTS checkpoints far less than the reactive Young-Daly rule...
        assert reports["drafts"].checkpoints <= reports["reactive"].checkpoints
        # ...and loses no more work than the naive baseline.
        assert reports["drafts"].work_lost <= reports["naive"].work_lost + 1e-6
