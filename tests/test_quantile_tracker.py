"""Unit tests for the incremental order-statistic tracker."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.quantile_tracker import QuantileTracker


class TestConstruction:
    def test_validation(self):
        with pytest.raises(ValueError):
            QuantileTracker(tick=0.0)
        with pytest.raises(ValueError):
            QuantileTracker(tick=1.0, max_value=0.5)
        with pytest.raises(ValueError):
            QuantileTracker(rounding="sideways")

    def test_domain_limit_enforced(self):
        tracker = QuantileTracker(tick=0.1, max_value=1.0)
        tracker.push(1.0)
        with pytest.raises(ValueError):
            tracker.push(1.2)
        with pytest.raises(ValueError):
            tracker.push(-0.1)
        with pytest.raises(ValueError):
            tracker.push(float("nan"))


class TestRounding:
    def test_up_rounds_conservatively_for_prices(self):
        tracker = QuantileTracker(tick=0.1, rounding="up")
        tracker.push(0.11)
        assert tracker.kth_largest(0) == pytest.approx(0.2)

    def test_down_rounds_conservatively_for_durations(self):
        tracker = QuantileTracker(tick=0.1, rounding="down")
        tracker.push(0.19)
        assert tracker.kth_largest(0) == pytest.approx(0.1)

    def test_exact_ticks_unchanged_by_either_mode(self):
        for mode in ("up", "down", "nearest"):
            tracker = QuantileTracker(tick=0.1, rounding=mode)
            tracker.push(0.3)
            assert tracker.kth_largest(0) == pytest.approx(0.3)


class TestWindowOps:
    def test_drop_oldest_is_fifo(self):
        tracker = QuantileTracker(tick=1.0, max_value=100.0)
        tracker.extend([5.0, 1.0, 9.0])
        tracker.drop_oldest(1)  # drops the 5, not the max or min
        assert len(tracker) == 2
        assert tracker.kth_smallest(0) == 1.0
        assert tracker.kth_largest(0) == 9.0

    def test_truncate_to(self):
        tracker = QuantileTracker(tick=1.0, max_value=100.0)
        tracker.extend(range(1, 11))
        tracker.truncate_to(3)
        assert tracker.recent(10) == [8.0, 9.0, 10.0]
        tracker.truncate_to(5)  # no-op when already smaller
        assert len(tracker) == 3

    def test_drop_errors(self):
        tracker = QuantileTracker(tick=1.0, max_value=10.0)
        tracker.push(1.0)
        with pytest.raises(ValueError):
            tracker.drop_oldest(2)
        with pytest.raises(ValueError):
            tracker.drop_oldest(-1)

    def test_clear(self):
        tracker = QuantileTracker(tick=1.0, max_value=10.0)
        tracker.extend([1.0, 2.0])
        tracker.clear()
        assert len(tracker) == 0
        assert tracker.recent(5) == []

    def test_count_greater(self):
        tracker = QuantileTracker(tick=1.0, max_value=10.0)
        tracker.extend([1.0, 2.0, 2.0, 5.0])
        assert tracker.count_greater(2.0) == 1
        assert tracker.count_greater(0.0) == 4
        assert tracker.count_greater(5.0) == 0


@given(
    values=st.lists(
        st.floats(min_value=0.0, max_value=50.0, allow_nan=False),
        min_size=1,
        max_size=150,
    ),
    keep=st.integers(min_value=1, max_value=150),
)
@settings(max_examples=80, deadline=None)
def test_matches_quantised_reference(values, keep):
    """Tracker order statistics equal those of the quantised recent window."""
    tick = 0.5
    tracker = QuantileTracker(tick=tick, max_value=100.0, rounding="up")
    tracker.extend(values)
    tracker.truncate_to(keep)
    window = values[-keep:] if keep <= len(values) else values
    quantised = np.sort([np.ceil(v / tick - 1e-9) * tick for v in window])
    for k in range(len(quantised)):
        assert tracker.kth_smallest(k) == pytest.approx(quantised[k])
