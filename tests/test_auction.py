"""Unit tests for the uniform-price market-clearing mechanism."""

import pytest

from repro.market.auction import Bid, clear_market


class TestBid:
    def test_validation(self):
        with pytest.raises(ValueError):
            Bid(bidder_id=1, price=0.0)
        with pytest.raises(ValueError):
            Bid(bidder_id=1, price=1.0, quantity=0)


class TestClearing:
    def test_price_is_lowest_accepted_bid(self):
        bids = [
            Bid(1, 1.00),
            Bid(2, 0.50),
            Bid(3, 0.25),
        ]
        result = clear_market(bids, supply=2, reserve_price=0.01)
        assert result.price == 0.50
        assert set(result.accepted) == {1, 2}
        assert result.rejected == (3,)
        assert result.supply_used == 2

    def test_reserve_when_supply_not_exhausted(self):
        bids = [Bid(1, 1.00), Bid(2, 0.50)]
        result = clear_market(bids, supply=10, reserve_price=0.07)
        assert result.price == 0.07
        assert set(result.accepted) == {1, 2}

    def test_below_reserve_never_accepted(self):
        bids = [Bid(1, 0.05)]
        result = clear_market(bids, supply=10, reserve_price=0.07)
        assert result.accepted == ()
        assert result.rejected == (1,)
        assert result.price == 0.07

    def test_request_size_counts(self):
        bids = [Bid(1, 1.00, quantity=3), Bid(2, 0.90, quantity=2)]
        result = clear_market(bids, supply=4, reserve_price=0.01)
        # Bidder 1 takes 3; bidder 2's all-or-nothing request of 2 cannot
        # fit in the remaining 1 unit.
        assert result.accepted == (1,)
        assert result.rejected == (2,)
        assert result.supply_used == 3
        # Supply not exhausted -> reserve price.
        assert result.price == 0.01

    def test_all_or_nothing_skips_but_price_reflects_exhaustion(self):
        bids = [
            Bid(1, 1.00, quantity=2),
            Bid(2, 0.90, quantity=3),
            Bid(3, 0.80, quantity=1),
        ]
        result = clear_market(bids, supply=3, reserve_price=0.01)
        assert set(result.accepted) == {1, 3}
        assert result.price == 0.80

    def test_deterministic_tie_break(self):
        bids = [Bid(5, 1.0), Bid(2, 1.0), Bid(9, 1.0)]
        result = clear_market(bids, supply=2, reserve_price=0.01)
        assert set(result.accepted) == {2, 5}  # lowest ids win ties

    def test_empty_book(self):
        result = clear_market([], supply=5, reserve_price=0.33)
        assert result.price == 0.33
        assert result.accepted == ()

    def test_zero_supply(self):
        result = clear_market([Bid(1, 1.0)], supply=0, reserve_price=0.1)
        assert result.accepted == ()
        assert result.rejected == (1,)

    def test_price_quantised_to_tick(self):
        bids = [Bid(1, 0.123456)]
        result = clear_market(bids, supply=1, reserve_price=0.01)
        assert result.price == round(result.price, 4)

    def test_validation(self):
        with pytest.raises(ValueError):
            clear_market([], supply=-1, reserve_price=0.1)
        with pytest.raises(ValueError):
            clear_market([], supply=1, reserve_price=0.0)
