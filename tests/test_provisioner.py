"""Unit tests for the provisioning policies."""

import pytest

from repro.cloud.api import EC2Api
from repro.provisioner.provisioner import (
    DraftsPolicy,
    LaunchPlan,
    OriginalPolicy,
)
from repro.service.client import DraftsClient
from repro.service.drafts_service import DraftsService, ServiceConfig
from repro.service.rest import RestRouter


@pytest.fixture(scope="module")
def env(request):
    small_universe = request.getfixturevalue("small_universe")
    api = EC2Api(small_universe)
    service = DraftsService(api, ServiceConfig(probabilities=(0.99,)))
    client = DraftsClient(RestRouter(service))
    combo = small_universe.combo("c4.large", "us-east-1b")
    now = small_universe.trace(combo).start + 45 * 86400.0
    return api, client, now


class TestLaunchPlan:
    def test_validation(self):
        with pytest.raises(ValueError):
            LaunchPlan(zone="z", tier="magic", bid=0.1)
        with pytest.raises(ValueError):
            LaunchPlan(zone="z", tier="spot", bid=0.0)


class TestOriginalPolicy:
    def test_bid_is_80_percent_of_ondemand(self, env):
        api, _, now = env
        policy = OriginalPolicy(api, "us-east-1")
        plan = policy.plan("c4.large", now, 3600.0)
        assert plan.tier == "spot"
        assert plan.bid == pytest.approx(round(0.8 * 0.1, 4))

    def test_zone_rotation(self, env):
        api, _, now = env
        policy = OriginalPolicy(api, "us-east-1")
        zones = {policy.plan("c4.large", now, 1.0).zone for _ in range(8)}
        assert len(zones) == 4  # round-robin over all four AZs

    def test_skips_unoffered_zones(self, env):
        api, _, now = env
        policy = OriginalPolicy(api, "us-east-1")
        zones = {policy.plan("cg1.4xlarge", now, 1.0).zone for _ in range(6)}
        assert zones == {"us-east-1b", "us-east-1c"}

    def test_unoffered_everywhere_raises(self, env):
        api, _, now = env
        policy = OriginalPolicy(api, "us-west-2")
        with pytest.raises(RuntimeError):
            policy.plan("cg1.4xlarge", now, 1.0)


class TestDraftsPolicy:
    def test_spot_plan_on_cheap_market(self, env):
        api, client, now = env
        policy = DraftsPolicy(api, client, "us-east-1", probability=0.99)
        plan = policy.plan("c4.large", now, 3600.0)
        assert plan.tier == "spot"
        assert plan.bid < 0.1  # below the On-demand price
        assert plan.zone.startswith("us-east-1")

    def test_premium_market_goes_ondemand(self, env):
        """§4.4: when even the DrAFTS bid >= On-demand, buy On-demand."""
        api, client, now = env
        policy = DraftsPolicy(api, client, "us-east-1", probability=0.99)
        plan = policy.plan("cg1.4xlarge", now, 3600.0)
        assert plan.tier == "ondemand"
        assert plan.bid == api.ondemand_price("cg1.4xlarge", "us-east-1")

    def test_profile_mode_uses_estimated_duration(self, env):
        api, client, now = env
        hourly = DraftsPolicy(api, client, "us-east-1", use_profiles=False)
        profiled = DraftsPolicy(api, client, "us-east-1", use_profiles=True)
        plan_1hr = hourly.plan("c4.large", now, 600.0)
        plan_prof = profiled.plan("c4.large", now, 600.0)
        # A 10-minute profile estimate can never require a *higher* bid
        # than a full-hour guarantee.
        assert plan_prof.bid <= plan_1hr.bid + 1e-9

    def test_policy_names(self, env):
        api, client, _ = env
        assert DraftsPolicy(api, client, "us-east-1").name == "drafts-1hr"
        assert (
            DraftsPolicy(api, client, "us-east-1", use_profiles=True).name
            == "drafts-profiles"
        )


class TestTypeFlexibility:
    """§4.3: DrAFTS selects across candidate instance types too."""

    def test_alternate_type_chosen_when_cheaper(self, env, small_universe):
        api, client, now = env
        # Find which of the two candidates is genuinely cheaper to make
        # durable right now, then verify the policy picks exactly that one.
        alternates = {"c3.2xlarge": ("c4.2xlarge",)}
        policy = DraftsPolicy(
            api, client, "us-east-1", probability=0.99,
            type_alternates=alternates,
        )
        plan = policy.plan("c3.2xlarge", now, 3600.0)
        quotes = {}
        for t in ("c3.2xlarge", "c4.2xlarge"):
            q = policy._quote(t, now, 3600.0)
            if q is not None:
                quotes[t] = q[1]
        assert quotes, "no candidate quotable"
        if plan.tier == "spot":
            cheapest = min(quotes, key=quotes.get)
            assert plan.instance_type == cheapest
            assert plan.bid == pytest.approx(quotes[cheapest])

    def test_no_alternates_uses_primary(self, env):
        api, client, now = env
        policy = DraftsPolicy(api, client, "us-east-1", probability=0.99)
        plan = policy.plan("c4.large", now, 3600.0)
        assert plan.instance_type in ("", "c4.large")

    def test_ondemand_fallback_keeps_requested_type(self, env):
        api, client, now = env
        policy = DraftsPolicy(
            api, client, "us-east-1", probability=0.99,
            type_alternates={"cg1.4xlarge": ("c4.8xlarge",)},
        )
        plan = policy.plan("cg1.4xlarge", now, 3600.0)
        if plan.tier == "ondemand":
            assert plan.instance_type == "cg1.4xlarge"
