"""Unit tests for the bidder population and supply processes."""

import numpy as np
import pytest

from repro.market.agents import AgentPopulation, PopulationConfig
from repro.market.supply import ConstantSupply, RandomWalkSupply, ShockSupply


class TestPopulationConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            PopulationConfig(arrival_rate=0.0)
        with pytest.raises(ValueError):
            PopulationConfig(diurnal_amplitude=1.0)
        with pytest.raises(ValueError):
            PopulationConfig(strategic_fraction=1.5)
        with pytest.raises(ValueError):
            PopulationConfig(max_quantity=0)


class TestAgentPopulation:
    def test_population_grows_then_stabilises(self, rng):
        pop = AgentPopulation(PopulationConfig(arrival_rate=5.0), rng)
        sizes = []
        for epoch in range(400):
            bids = pop.step(epoch)
            pop.after_clearing(0.1, ())
            sizes.append(len(bids))
        # Steady state around arrival_rate * mean_holding = 120.
        assert 40 < np.mean(sizes[200:]) < 400

    def test_departures_happen(self, rng):
        cfg = PopulationConfig(arrival_rate=5.0, mean_holding_epochs=2.0)
        pop = AgentPopulation(cfg, rng)
        for epoch in range(100):
            pop.step(epoch)
            pop.after_clearing(0.1, ())
        # Short holding times keep the pool small.
        assert pop.active_count < 60

    def test_outbid_nonstrategic_agents_leave(self, rng):
        cfg = PopulationConfig(
            arrival_rate=10.0, strategic_fraction=0.0,
            mean_holding_epochs=1000.0,
        )
        pop = AgentPopulation(cfg, rng)
        bids = pop.step(0)
        rejected = tuple(b.bidder_id for b in bids)
        pop.after_clearing(0.5, rejected)
        assert pop.active_count == 0

    def test_strategic_agents_track_price(self, rng):
        cfg = PopulationConfig(
            arrival_rate=10.0,
            base_valuation=2.0,
            strategic_fraction=1.0,
            strategic_margin=0.10,
            mean_holding_epochs=1000.0,
        )
        pop = AgentPopulation(cfg, rng)
        pop.step(0)
        pop.after_clearing(2.0, ())
        bids = pop.step(1)
        for bid in bids:
            assert bid.price == pytest.approx(2.2, abs=0.01)

    def test_strategic_agents_respect_valuation_cap(self, rng):
        """Price-tracking never ratchets past the walk-away price."""
        cfg = PopulationConfig(
            arrival_rate=10.0,
            base_valuation=0.1,
            strategic_fraction=1.0,
            strategic_margin=0.10,
            strategic_cap=4.0,
            mean_holding_epochs=1000.0,
        )
        pop = AgentPopulation(cfg, rng)
        price = 0.1
        for epoch in range(200):
            bids = pop.step(epoch)
            if bids:
                price = max(b.price for b in bids)
            pop.after_clearing(price, ())
        assert price <= 0.4 + 1e-9

    def test_bids_are_tick_positive(self, rng):
        pop = AgentPopulation(PopulationConfig(arrival_rate=20.0), rng)
        for bid in pop.step(0):
            assert bid.price >= 1e-4
            assert 1 <= bid.quantity <= 3


class TestSupply:
    def test_constant(self, rng):
        s = ConstantSupply(units=7)
        assert all(s.capacity(e, rng) == 7 for e in range(10))
        with pytest.raises(ValueError):
            ConstantSupply(units=0)

    def test_random_walk_bounds(self, rng):
        s = RandomWalkSupply(
            initial=10, minimum=5, maximum=15, step=2, move_prob=0.9
        )
        values = [s.capacity(e, rng) for e in range(500)]
        assert min(values) >= 5
        assert max(values) <= 15
        assert len(set(values)) > 1  # it actually moves

    def test_random_walk_validation(self):
        with pytest.raises(ValueError):
            RandomWalkSupply(initial=1, minimum=5, maximum=10)
        with pytest.raises(ValueError):
            RandomWalkSupply(initial=5, minimum=0, maximum=10)

    def test_shock_floor_and_recovery(self, rng):
        s = ShockSupply(
            baseline=20, floor=2, shock_prob=0.2, mean_length=3.0
        )
        values = [s.capacity(e, rng) for e in range(300)]
        assert set(values) <= {2, 20}
        assert 2 in values and 20 in values

    def test_shock_validation(self):
        with pytest.raises(ValueError):
            ShockSupply(baseline=5, floor=10)
        with pytest.raises(ValueError):
            ShockSupply(baseline=5, floor=1, shock_prob=2.0)
