"""Integration tests for the serving gateway.

Uses the session-scoped ``small_universe`` and a :class:`ManualClock`, so
every wall-time decision (deadlines, breaker cooldowns) is deterministic.
"""

import threading

import pytest

from repro.cloud.api import EC2Api
from repro.service.client import DraftsClient
from repro.service.drafts_service import DraftsService, ServiceConfig
from repro.serving.clock import ManualClock
from repro.serving.gateway import GatewayConfig, ServingGateway
from repro.serving.store import EntryState


def _wait_until(predicate, timeout=5.0):
    import time

    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.002)
    return False


@pytest.fixture(scope="module")
def env(request):
    small_universe = request.getfixturevalue("small_universe")
    api = EC2Api(small_universe)
    gateway = ServingGateway(DraftsService(api), clock=ManualClock())
    combo = small_universe.combo("c4.large", "us-east-1b")
    now = small_universe.trace(combo).start + 45 * 86400.0
    return gateway, now


class _FlakyApi:
    """Delegating API whose history reads can be switched to fail."""

    def __init__(self, api):
        self._api = api
        self.fail = False
        self.calls = 0

    def __getattr__(self, name):
        return getattr(self._api, name)

    def describe_spot_price_history(self, instance_type, zone, now, since=None):
        self.calls += 1
        if self.fail:
            raise RuntimeError("history API down")
        return self._api.describe_spot_price_history(
            instance_type, zone, now, since=since
        )


class _BlockingApi:
    """Delegating API whose history reads block on an event."""

    def __init__(self, api):
        self._api = api
        self.entered = threading.Event()
        self.release = threading.Event()
        self.block = False

    def __getattr__(self, name):
        return getattr(self._api, name)

    def describe_spot_price_history(self, instance_type, zone, now, since=None):
        if self.block:
            self.entered.set()
            assert self.release.wait(10.0)
        return self._api.describe_spot_price_history(
            instance_type, zone, now, since=since
        )


class TestRoutes:
    def test_health_and_unknown(self, env):
        gateway, _ = env
        assert gateway.get("/health").ok
        assert gateway.get("/nope").status == 404

    def test_predictions_bid_cheapest(self, env):
        gateway, now = env
        pred = gateway.get(
            f"/predictions/c4.large/us-east-1b?probability=0.95&now={now}"
        )
        assert pred.status == 200
        assert len(pred.body["bids"]) == len(pred.body["durations"])

        bid = gateway.get(
            f"/bid/c4.large/us-east-1b?probability=0.95&duration=1800&now={now}"
        )
        assert bid.status == 200 and bid.body["bid"] > 0

        cheapest = gateway.get(
            f"/cheapest/c4.large/us-east-1?probability=0.95&now={now}"
        )
        assert cheapest.status == 200
        assert cheapest.body["zone"].startswith("us-east-1")

    def test_error_statuses_match_router_semantics(self, env):
        gateway, now = env
        # missing param → 400, malformed float → 400 naming the parameter
        assert gateway.get("/predictions/c4.large/us-east-1b?now=1").status == 400
        bad = gateway.get(
            "/predictions/c4.large/us-east-1b?probability=abc&now=1"
        )
        assert bad.status == 400 and "probability" in bad.body["error"]
        # unpublished probability level → 400
        assert (
            gateway.get(
                f"/predictions/c4.large/us-east-1b?probability=0.5&now={now}"
            ).status
            == 400
        )
        # unknown combination → 404
        assert (
            gateway.get(
                f"/predictions/cg1.4xlarge/us-west-2a?probability=0.95&now={now}"
            ).status
            == 404
        )

    def test_metrics_route(self, env):
        gateway, now = env
        gateway.get(f"/predictions/c4.large/us-east-1b?probability=0.95&now={now}")
        snap = gateway.get("/metrics")
        assert snap.status == 200
        assert "counters" in snap.body and "store" in snap.body
        assert snap.body["store"]["entries"] >= 1


class TestInlineProbe:
    """The event-loop front end's non-blocking dispatch probe."""

    @pytest.fixture()
    def probe_env(self, small_universe):
        api = EC2Api(small_universe)
        gateway = ServingGateway(DraftsService(api), clock=ManualClock())
        combo = small_universe.combo("c4.large", "us-east-1b")
        now = small_universe.trace(combo).start + 45 * 86400.0
        return gateway, now

    def test_in_memory_routes_are_inline(self, probe_env):
        gateway, _ = probe_env
        for url in ("/health", "/metrics", "/nope", "/predictions/only"):
            assert gateway.probe_inline(url) == (True, None)

    def test_malformed_query_is_inline_400(self, probe_env):
        gateway, now = probe_env
        # Missing and unparseable parameters answer 400 from memory.
        assert gateway.probe_inline(
            "/predictions/c4.large/us-east-1b?now=1"
        ) == (True, None)
        assert gateway.probe_inline(
            f"/predictions/c4.large/us-east-1b?probability=abc&now={now}"
        ) == (True, None)

    def test_cheapest_always_offloads(self, probe_env):
        gateway, now = probe_env
        assert gateway.probe_inline(
            f"/cheapest/c4.large/us-east-1?probability=0.95&now={now}"
        ) == (False, None)

    def test_cold_key_offloads_without_store_side_effects(self, probe_env):
        gateway, now = probe_env
        url = f"/predictions/c4.large/us-east-1b?probability=0.95&now={now}"
        before = gateway.metrics.snapshot()
        assert gateway.probe_inline(url) == (False, None)
        # Side-effect free: no store entry appeared, no counter moved.
        assert gateway.store.peek(("c4.large", "us-east-1b", 0.95)) is None
        assert gateway.metrics.snapshot() == before

    def test_warm_key_is_inline_and_yields_the_stored_curve(self, probe_env):
        gateway, now = probe_env
        url = f"/predictions/c4.large/us-east-1b?probability=0.95&now={now}"
        assert gateway.get(url).status == 200
        can_inline, curve = gateway.probe_inline(url)
        assert can_inline and gateway.can_serve_inline(url)
        entry = gateway.store.peek(("c4.large", "us-east-1b", 0.95))
        assert curve is entry.curve

    def test_stale_key_is_still_inline(self, probe_env):
        gateway, now = probe_env
        url = f"/predictions/c4.large/us-east-1b?probability=0.95&now={now}"
        assert gateway.get(url).status == 200
        entry = gateway.store.peek(("c4.large", "us-east-1b", 0.95))
        later = now + gateway.store.refresh_seconds + 1.0
        assert gateway.store.state_of(entry, later) is EntryState.STALE
        stale_url = (
            f"/predictions/c4.large/us-east-1b?probability=0.95&now={later}"
        )
        assert gateway.probe_inline(stale_url) == (True, entry.curve)

    def test_bid_route_shares_the_prediction_entry(self, probe_env):
        gateway, now = probe_env
        warm = f"/predictions/c4.large/us-east-1b?probability=0.95&now={now}"
        assert gateway.get(warm).status == 200
        can_inline, curve = gateway.probe_inline(
            f"/bid/c4.large/us-east-1b?probability=0.95&duration=1800&now={now}"
        )
        assert can_inline and curve is not None


class TestDifferential:
    def test_fresh_answers_bit_identical_across_universe(self, small_universe):
        """Cold gateway reads must serialise byte-for-byte like the lazy
        service across the (subsampled) universe — the gateway is a cache
        in front of DraftsService, never a different predictor."""
        api = EC2Api(small_universe)
        gateway = ServingGateway(DraftsService(api), clock=ManualClock())
        reference = DraftsService(EC2Api(small_universe))
        for combo in small_universe.subsample(per_class=1):
            now = small_universe.trace(combo).start + 45 * 86400.0
            expected = reference.curve(
                combo.instance_type, combo.zone.name, 0.95, now
            )
            response = gateway.get(
                f"/predictions/{combo.instance_type}/{combo.zone.name}"
                f"?probability=0.95&now={now}"
            )
            if expected is None:
                assert response.status == 503
            else:
                assert response.status == 200
                assert response.body == expected.to_dict()

    def test_deterministic_replay(self, small_universe):
        """Same universe, same clock, same request sequence → identical
        bodies and identical metrics counters."""
        combo = small_universe.combo("c4.large", "us-east-1b")
        now = small_universe.trace(combo).start + 45 * 86400.0
        urls = [
            f"/predictions/c4.large/us-east-1b?probability=0.95&now={now}",
            f"/bid/c4.large/us-east-1b?probability=0.95&duration=1800&now={now}",
            f"/predictions/c4.large/us-east-1b?probability=0.95&now={now + 1800}",
        ]

        def run():
            gateway = ServingGateway(
                DraftsService(EC2Api(small_universe)), clock=ManualClock()
            )
            bodies = [gateway.get(url).body for url in urls]
            gateway.refresher.run_pending()
            return bodies, gateway.metrics.snapshot()["counters"]

        assert run() == run()


class TestStaleWhileRevalidate:
    def test_stale_read_serves_old_curve_and_refreshes_off_path(
        self, small_universe
    ):
        api = EC2Api(small_universe)
        gateway = ServingGateway(DraftsService(api), clock=ManualClock())
        combo = small_universe.combo("c4.large", "us-east-1b")
        now = small_universe.trace(combo).start + 45 * 86400.0
        url = "/predictions/c4.large/us-east-1b?probability=0.95&now={}"

        first = gateway.get(url.format(now))
        key = ("c4.large", "us-east-1b", 0.95)
        generation_before = gateway.store.peek(key).generation

        stale = gateway.get(url.format(now + 3600.0))
        # Served immediately from the stale entry (same body) ...
        assert stale.body == first.body
        assert gateway.metrics.counter("gateway.stale_hits").value == 1
        # ... while the recompute waits in the background queue.
        assert gateway.refresher.pending_count() == 1
        gateway.refresher.run_pending()
        entry = gateway.store.peek(key)
        assert entry.generation == generation_before + 1
        assert entry.computed_at == now + 3600.0
        assert gateway.store.state_of(entry, now + 3600.0) is EntryState.FRESH


    def test_tick_respects_refresh_budget(self, small_universe):
        gateway = ServingGateway(
            DraftsService(EC2Api(small_universe)),
            GatewayConfig(refresh_budget_per_tick=2),
            clock=ManualClock(),
        )
        combo = small_universe.combo("c4.large", "us-east-1b")
        now = small_universe.trace(combo).start + 45 * 86400.0
        for zone in ("us-east-1b", "us-east-1c", "us-east-1d"):
            gateway.get(
                f"/predictions/c4.large/{zone}?probability=0.95&now={now}"
            )
        # All three entries are stale an hour later; one tick enqueues
        # only the configured budget.
        assert gateway.tick(now + 3600.0) == 2
        assert gateway.refresher.pending_count() == 2
        with pytest.raises(ValueError):
            GatewayConfig(refresh_budget_per_tick=0)

    def test_snapshot_exposes_service_refresh_split(self, small_universe):
        gateway = ServingGateway(
            DraftsService(EC2Api(small_universe)), clock=ManualClock()
        )
        combo = small_universe.combo("c4.large", "us-east-1b")
        now = small_universe.trace(combo).start + 45 * 86400.0
        url = "/predictions/c4.large/us-east-1b?probability=0.95&now={}"
        gateway.get(url.format(now))
        gateway.get(url.format(now + 3600.0))
        gateway.refresher.run_pending()
        service = gateway.snapshot()["service"]
        assert service["cold_fits"] == 1
        assert service["refits"] == 0
        assert service["incremental_refreshes"] >= 1
        assert service["recomputes"] == (
            service["cold_fits"]
            + service["refits"]
            + service["incremental_refreshes"]
        )


class TestCoalescing:
    def test_concurrent_cold_misses_single_recompute(self, small_universe):
        api = _BlockingApi(EC2Api(small_universe))
        gateway = ServingGateway(DraftsService(api), clock=ManualClock())
        combo = small_universe.combo("c4.large", "us-east-1b")
        now = small_universe.trace(combo).start + 45 * 86400.0
        url = f"/predictions/c4.large/us-east-1b?probability=0.95&now={now}"
        key = ("c4.large", "us-east-1b", 0.95)

        api.block = True
        statuses = []
        lock = threading.Lock()

        def fetch():
            response = gateway.get(url)
            with lock:
                statuses.append(response.status)

        leader = threading.Thread(target=fetch)
        leader.start()
        assert api.entered.wait(10.0)  # leader is inside the recompute

        followers = [threading.Thread(target=fetch) for _ in range(7)]
        for thread in followers:
            thread.start()
        assert _wait_until(
            lambda: gateway.refresher.single_flight.followers(key) == 7
        )
        api.release.set()
        leader.join()
        for thread in followers:
            thread.join()

        counters = gateway.metrics.snapshot()["counters"]
        assert statuses == [200] * 8
        assert counters["serving.recomputes"] == 1  # K misses, one compute
        assert counters["serving.coalesced"] == 7
        assert counters["gateway.misses"] == 8


class TestLoadShedding:
    def test_excess_inflight_sheds_with_retry_after(self, small_universe):
        api = _BlockingApi(EC2Api(small_universe))
        gateway = ServingGateway(
            DraftsService(api),
            GatewayConfig(max_inflight=1, retry_after_seconds=2.5),
            clock=ManualClock(),
        )
        combo = small_universe.combo("c4.large", "us-east-1b")
        now = small_universe.trace(combo).start + 45 * 86400.0
        url = f"/predictions/c4.large/us-east-1b?probability=0.95&now={now}"

        api.block = True
        holder_status = []
        holder = threading.Thread(
            target=lambda: holder_status.append(gateway.get(url).status)
        )
        holder.start()
        assert api.entered.wait(10.0)  # the one slot is taken

        shed = gateway.get(url)
        assert shed.status == 429
        assert shed.body["retry_after"] == 2.5

        api.release.set()
        holder.join()
        assert holder_status == [200]

        counters = gateway.metrics.snapshot()["counters"]
        assert counters["gateway.shed"] == 1
        assert (
            counters["gateway.hits"]
            + counters["gateway.stale_hits"]
            + counters["gateway.misses"]
            + counters["gateway.shed"]
            + counters.get("gateway.errors", 0)
            == counters["gateway.requests"]
        )


class TestCircuitBreaker:
    def _broken_gateway(self, small_universe, clock):
        api = _FlakyApi(EC2Api(small_universe))
        gateway = ServingGateway(
            DraftsService(api),
            GatewayConfig(breaker_threshold=3, breaker_cooldown_seconds=60.0),
            clock=clock,
        )
        return api, gateway

    def test_trips_to_ondemand_fallback_and_recovers(self, small_universe):
        clock = ManualClock()
        api, gateway = self._broken_gateway(small_universe, clock)
        combo = small_universe.combo("c4.large", "us-east-1b")
        now = small_universe.trace(combo).start + 45 * 86400.0
        bid_url = (
            f"/bid/c4.large/us-east-1b?probability=0.95&duration=1800&now={now}"
        )

        api.fail = True
        for _ in range(3):  # three failing recomputes trip the breaker
            assert gateway.get(bid_url).status == 503

        fallback = gateway.get(bid_url)
        assert fallback.status == 200
        assert fallback.body["tier"] == "ondemand"
        assert fallback.body["fallback"] is True
        assert fallback.body["bid"] == pytest.approx(
            gateway.service.api.ondemand_price("c4.large", "us-east-1")
        )
        counters = gateway.metrics.snapshot()["counters"]
        assert counters["gateway.breaker_trips"] == 1
        assert counters["gateway.breaker_short_circuits"] == 1
        assert counters["gateway.fallbacks"] == 1

        # After the cooldown the circuit half-opens; a healthy recompute
        # closes it and real answers come back.
        api.fail = False
        clock.advance(61.0)
        recovered = gateway.get(bid_url)
        assert recovered.status == 200
        assert "fallback" not in recovered.body

    def test_half_open_admits_exactly_one_probe(self, small_universe):
        """Regression: after the cooldown, concurrent requests must not all
        probe at once (the thundering half-open). Exactly one takes the
        probe lease; everyone else stays on the fallback until it
        resolves."""
        clock = ManualClock()
        flaky = _FlakyApi(EC2Api(small_universe))
        api = _BlockingApi(flaky)
        gateway = ServingGateway(
            DraftsService(api),
            GatewayConfig(breaker_threshold=3, breaker_cooldown_seconds=60.0),
            clock=clock,
        )
        combo = small_universe.combo("c4.large", "us-east-1b")
        now = small_universe.trace(combo).start + 45 * 86400.0
        url = f"/predictions/c4.large/us-east-1b?probability=0.95&now={now}"

        flaky.fail = True
        for _ in range(3):
            assert gateway.get(url).status == 503
        assert gateway.metrics.counter("gateway.breaker_trips").value == 1

        clock.advance(61.0)
        flaky.fail = False
        api.block = True
        probe_result = []
        probe = threading.Thread(
            target=lambda: probe_result.append(gateway.get(url))
        )
        probe.start()
        assert api.entered.wait(10.0)  # the probe is inside the recompute
        calls_during_probe = flaky.calls

        # A second request while the probe is in flight short-circuits to
        # the fallback instead of starting a second probe.
        concurrent = gateway.get(url)
        assert concurrent.status == 503
        assert concurrent.body["fallback"] == "ondemand"
        assert flaky.calls == calls_during_probe  # no second recompute

        api.release.set()
        probe.join()
        assert probe_result[0].status == 200
        # The successful probe closed the circuit; answers are real again.
        assert gateway.get(url).status == 200
        counters = gateway.metrics.snapshot()["counters"]
        assert counters["gateway.breaker_trips"] == 1
        assert counters["gateway.breaker_reopens"] == 0

    def test_failed_probe_reopens_without_new_threshold(self, small_universe):
        """Regression: a failed probe must re-open the circuit immediately
        (one wasted recompute per cooldown), not leave it closed until
        `threshold` fresh failures accumulate again."""
        clock = ManualClock()
        api, gateway = self._broken_gateway(small_universe, clock)
        combo = small_universe.combo("c4.large", "us-east-1b")
        now = small_universe.trace(combo).start + 45 * 86400.0
        url = f"/predictions/c4.large/us-east-1b?probability=0.95&now={now}"
        api.fail = True
        for _ in range(3):
            gateway.get(url)
        clock.advance(61.0)

        calls_before = api.calls
        assert gateway.get(url).status == 503  # the probe runs — and fails
        assert api.calls == calls_before + 1
        counters = gateway.metrics.snapshot()["counters"]
        assert counters["gateway.breaker_reopens"] == 1
        assert counters["gateway.breaker_trips"] == 1  # a reopen is no trip

        # Fully open again: the next request never touches the API.
        response = gateway.get(url)
        assert response.status == 503
        assert response.body["fallback"] == "ondemand"
        assert api.calls == calls_before + 1

    def test_probe_success_resets_stale_failure_count(self, small_universe):
        """Regression: recovery must clear the pre-trip failure count, so
        one later failure cannot instantly re-trip the breaker."""
        clock = ManualClock()
        api, gateway = self._broken_gateway(small_universe, clock)
        combo = small_universe.combo("c4.large", "us-east-1b")
        now = small_universe.trace(combo).start + 45 * 86400.0
        url = "/predictions/c4.large/us-east-1b?probability=0.95&now={}"
        api.fail = True
        for _ in range(3):
            gateway.get(url.format(now))
        clock.advance(61.0)
        api.fail = False
        assert gateway.get(url.format(now)).status == 200  # probe: recover

        # One fresh failure (a background refresh of the now-stale entry)
        # is 1 of 3, not 4 of 3: the circuit stays closed.
        api.fail = True
        stale = gateway.get(url.format(now + 3600.0))
        assert stale.status == 200  # stale-while-revalidate still serves
        gateway.refresher.run_pending()  # the background recompute fails
        counters = gateway.metrics.snapshot()["counters"]
        assert counters["gateway.breaker_trips"] == 1
        api.fail = False
        assert gateway.get(url.format(now + 3600.0)).status == 200

    def test_predictions_while_open_is_503_with_hint(self, small_universe):
        clock = ManualClock()
        api, gateway = self._broken_gateway(small_universe, clock)
        combo = small_universe.combo("c4.large", "us-east-1b")
        now = small_universe.trace(combo).start + 45 * 86400.0
        url = f"/predictions/c4.large/us-east-1b?probability=0.95&now={now}"
        api.fail = True
        for _ in range(3):
            gateway.get(url)
        response = gateway.get(url)
        assert response.status == 503
        assert response.body["fallback"] == "ondemand"
        assert response.body["retry_after"] == 60.0


class TestDeadlines:
    def test_no_budget_left_skips_recompute(self, small_universe):
        gateway = ServingGateway(
            DraftsService(EC2Api(small_universe)), clock=ManualClock()
        )
        combo = small_universe.combo("c4.large", "us-east-1b")
        now = small_universe.trace(combo).start + 45 * 86400.0
        response = gateway.get(
            f"/predictions/c4.large/us-east-1b"
            f"?probability=0.95&now={now}&deadline=0"
        )
        assert response.status == 504
        assert gateway.metrics.counter("gateway.deadline_exceeded").value == 1
        # The recompute was skipped entirely.
        assert gateway.metrics.counter("serving.recomputes").value == 0

    def test_slow_recompute_returns_504(self, small_universe):
        clock = ManualClock()
        api = EC2Api(small_universe)

        class _SlowApi:
            def __getattr__(self, name):
                return getattr(api, name)

            def describe_spot_price_history(
                self, instance_type, zone, now, since=None
            ):
                clock.advance(9.0)  # the recompute "takes" 9 wall seconds
                return api.describe_spot_price_history(
                    instance_type, zone, now, since=since
                )

        gateway = ServingGateway(DraftsService(_SlowApi()), clock=clock)
        combo = small_universe.combo("c4.large", "us-east-1b")
        now = small_universe.trace(combo).start + 45 * 86400.0
        url = (
            f"/predictions/c4.large/us-east-1b"
            f"?probability=0.95&now={now}&deadline=5"
        )
        assert gateway.get(url).status == 504
        # The curve *was* computed and cached, so a retry is instant.
        assert gateway.get(url).status == 200


class TestDeadlineAccounting:
    class _SteppingClock(ManualClock):
        """A clock that jumps ``step`` seconds on every read — models a
        request whose wall time elapses between handler entry and exit."""

        def __init__(self):
            super().__init__()
            self.step = 0.0

        def now(self):
            value = super().now()
            if self.step:
                self.advance(self.step)
            return value

    def test_deadline_counted_once_when_it_fires_twice(self, small_universe):
        """Regression: a deadline that trips mid-handler (zone 2 of a
        /cheapest scan) *and* post-hoc used to increment
        ``deadline_exceeded`` twice for one request."""
        clock = ManualClock()
        api = EC2Api(small_universe)

        class _SlowApi:
            def __getattr__(self, name):
                return getattr(api, name)

            def describe_spot_price_history(
                self, instance_type, zone, now, since=None
            ):
                clock.advance(6.0)  # each zone's recompute "takes" 6 s
                return api.describe_spot_price_history(
                    instance_type, zone, now, since=since
                )

        gateway = ServingGateway(DraftsService(_SlowApi()), clock=clock)
        combo = small_universe.combo("c4.large", "us-east-1b")
        now = small_universe.trace(combo).start + 45 * 86400.0
        response = gateway.get(
            f"/cheapest/c4.large/us-east-1?probability=0.95&now={now}&deadline=5"
        )
        assert response.status == 504
        counters = gateway.metrics.snapshot()["counters"]
        assert counters["gateway.deadline_exceeded"] == 1
        assert counters["gateway.errors"] == 1
        assert (
            counters["gateway.hits"]
            + counters["gateway.stale_hits"]
            + counters["gateway.misses"]
            + counters["gateway.shed"]
            + counters["gateway.errors"]
            == counters["gateway.requests"]
            == 1
        )

    def test_late_504_is_not_classified_as_a_hit(self, small_universe):
        """Regression: a request that found a fresh curve but overran its
        budget returns 504 — it must be accounted as an error, not a
        served hit."""
        clock = self._SteppingClock()
        gateway = ServingGateway(
            DraftsService(EC2Api(small_universe)), clock=clock
        )
        combo = small_universe.combo("c4.large", "us-east-1b")
        now = small_universe.trace(combo).start + 45 * 86400.0
        url = f"/predictions/c4.large/us-east-1b?probability=0.95&now={now}"
        assert gateway.get(url).status == 200  # warm the store (a miss)

        clock.step = 6.0  # from here every clock read burns 6 wall seconds
        late = gateway.get(url + "&deadline=5")
        assert late.status == 504
        counters = gateway.metrics.snapshot()["counters"]
        assert counters["gateway.hits"] == 0  # the fresh read was not a hit
        assert counters["gateway.misses"] == 1  # just the warming request
        assert counters["gateway.errors"] == 1
        assert counters["gateway.deadline_exceeded"] == 1


class TestBidStatuses:
    def test_short_history_is_503_matching_predictions(self, small_universe):
        """Regression: /bid answered 404 where /predictions answered 503
        for the same too-short history."""
        gateway = ServingGateway(
            DraftsService(EC2Api(small_universe)), clock=ManualClock()
        )
        combo = small_universe.combo("c4.large", "us-east-1b")
        early = small_universe.trace(combo).start + 3600.0
        pred = gateway.get(
            f"/predictions/c4.large/us-east-1b?probability=0.95&now={early}"
        )
        bid = gateway.get(
            f"/bid/c4.large/us-east-1b"
            f"?probability=0.95&duration=1800&now={early}"
        )
        assert pred.status == 503
        assert bid.status == 503
        assert "insufficient history" in bid.body["error"]

    def test_404_reserved_for_unguaranteeable_duration(self, small_universe):
        """404 means: a real curve exists, but no published bid guarantees
        the requested duration."""
        gateway = ServingGateway(
            DraftsService(EC2Api(small_universe)), clock=ManualClock()
        )
        combo = small_universe.combo("c4.large", "us-east-1b")
        now = small_universe.trace(combo).start + 45 * 86400.0
        bid = gateway.get(
            f"/bid/c4.large/us-east-1b"
            f"?probability=0.95&duration=1e12&now={now}"
        )
        assert bid.status == 404
        assert "On-demand" in bid.body["error"]


class TestGatewayClient:
    def test_client_over_gateway(self, small_universe):
        gateway = ServingGateway(
            DraftsService(EC2Api(small_universe)), clock=ManualClock()
        )
        client = DraftsClient(gateway)
        combo = small_universe.combo("c4.large", "us-east-1b")
        now = small_universe.trace(combo).start + 45 * 86400.0
        assert client.health()
        curve = client.fetch_curve("c4.large", "us-east-1b", 0.95, now)
        assert curve is not None and curve.minimum_bid > 0
        assert client.bid_for("c4.large", "us-east-1b", 0.95, 1800.0, now) > 0
        snapshot = client.metrics()
        assert snapshot is not None and snapshot["counters"]["gateway.misses"] >= 1

    def test_client_retries_sheds(self):
        class _ShedOnce:
            def __init__(self):
                self.calls = 0

            def get(self, url):
                from repro.service.rest import Response

                self.calls += 1
                if self.calls == 1:
                    return Response(429, {"retry_after": 1.5})
                return Response(200, {"status": "ok"})

        sleeps = []
        endpoint = _ShedOnce()
        client = DraftsClient(endpoint, shed_retries=2, sleep=sleeps.append)
        assert client.health()
        assert endpoint.calls == 2
        assert sleeps == [1.5]


class TestAccounting:
    def test_identity_over_mixed_traffic(self, small_universe):
        gateway = ServingGateway(
            DraftsService(EC2Api(small_universe)), clock=ManualClock()
        )
        combo = small_universe.combo("c4.large", "us-east-1b")
        now = small_universe.trace(combo).start + 45 * 86400.0
        urls = [
            f"/predictions/c4.large/us-east-1b?probability=0.95&now={now}",  # miss
            f"/predictions/c4.large/us-east-1b?probability=0.95&now={now}",  # hit
            f"/predictions/c4.large/us-east-1b?probability=0.95&now={now + 3600}",  # stale
            "/predictions/c4.large/us-east-1b?probability=abc&now=1",  # error
            f"/bid/c4.large/us-east-1b?probability=0.95&duration=1800&now={now + 3600}",
            "/health",  # not a curve request: counted as "other"
        ]
        for url in urls:
            gateway.get(url)
        counters = gateway.metrics.snapshot()["counters"]
        assert counters["gateway.requests"] == 5
        assert (
            counters["gateway.hits"]
            + counters["gateway.stale_hits"]
            + counters["gateway.misses"]
            + counters.get("gateway.shed", 0)
            + counters["gateway.errors"]
            == counters["gateway.requests"]
        )
        assert counters["gateway.other"] == 1

    def test_identity_across_deadline_breaker_and_404_paths(
        self, small_universe
    ):
        """The conservation identity must survive every exceptional path in
        one stream: deadline 504s, breaker trips and short-circuits,
        unguaranteeable-duration 404s, parse-error 400s."""
        clock = ManualClock()
        api = _FlakyApi(EC2Api(small_universe))
        gateway = ServingGateway(
            DraftsService(api),
            GatewayConfig(breaker_threshold=2, breaker_cooldown_seconds=60.0),
            clock=clock,
        )
        combo = small_universe.combo("c4.large", "us-east-1b")
        now = small_universe.trace(combo).start + 45 * 86400.0
        pred = f"/predictions/c4.large/us-east-1b?probability=0.95&now={now}"

        assert gateway.get(pred + "&deadline=0").status == 504  # error
        api.fail = True
        assert gateway.get(pred).status == 503  # failure 1 of 2
        assert gateway.get(pred).status == 503  # failure 2: trips
        assert gateway.get(pred).status == 503  # short-circuit to fallback
        api.fail = False
        bid404 = gateway.get(  # other zone: real curve, hopeless duration
            f"/bid/c4.large/us-east-1c?probability=0.95&duration=1e12&now={now}"
        )
        assert bid404.status == 404
        assert gateway.get(  # parse error
            "/predictions/c4.large/us-east-1b?probability=abc&now=1"
        ).status == 400

        counters = gateway.metrics.snapshot()["counters"]
        assert counters["gateway.requests"] == 6
        assert counters["gateway.deadline_exceeded"] == 1
        assert counters["gateway.breaker_trips"] == 1
        assert counters["gateway.breaker_short_circuits"] == 1
        assert (
            counters["gateway.hits"]
            + counters["gateway.stale_hits"]
            + counters["gateway.misses"]
            + counters["gateway.shed"]
            + counters["gateway.errors"]
            == counters["gateway.requests"]
        )
