"""Unit tests for the PriceTrace container."""

import numpy as np
import pytest

from repro.market.traces import PriceTrace


def _trace():
    return PriceTrace(
        times=np.array([0.0, 300.0, 600.0, 900.0]),
        prices=np.array([0.10, 0.20, 0.15, 0.30]),
        instance_type="c4.large",
        zone="us-east-1b",
    )


class TestConstruction:
    def test_validation(self):
        with pytest.raises(ValueError):
            PriceTrace(np.array([0.0, 0.0]), np.array([1.0, 1.0]))
        with pytest.raises(ValueError):
            PriceTrace(np.array([0.0, 1.0]), np.array([1.0, -1.0]))
        with pytest.raises(ValueError):
            PriceTrace(np.array([]), np.array([]))
        with pytest.raises(ValueError):
            PriceTrace(np.array([0.0]), np.array([np.inf]))
        with pytest.raises(ValueError):
            PriceTrace(np.array([0.0, 1.0]), np.array([1.0]))

    def test_immutability(self):
        t = _trace()
        with pytest.raises(ValueError):
            t.prices[0] = 9.9

    def test_len_and_span(self):
        t = _trace()
        assert len(t) == 4
        assert t.start == 0.0
        assert t.end == 900.0
        assert t.span == 900.0


class TestStepEvaluation:
    def test_price_at(self):
        t = _trace()
        assert t.price_at(0.0) == 0.10
        assert t.price_at(299.0) == 0.10
        assert t.price_at(300.0) == 0.20
        assert t.price_at(5000.0) == 0.30  # last value persists

    def test_price_before_start_rejected(self):
        with pytest.raises(ValueError):
            _trace().price_at(-1.0)

    def test_prices_at_vectorised(self):
        t = _trace()
        out = t.prices_at(np.array([0.0, 450.0, 900.0]))
        np.testing.assert_allclose(out, [0.10, 0.20, 0.30])

    def test_first_reach_after(self):
        t = _trace()
        assert t.first_reach_after(0.0, 0.15) == 300.0
        assert t.first_reach_after(0.0, 0.10) == 0.0  # already at level
        assert t.first_reach_after(350.0, 0.30) == 900.0
        assert np.isinf(t.first_reach_after(0.0, 0.31))
        # A level below the price currently in force is reached immediately.
        assert t.first_reach_after(400.0, 0.15) == 400.0
        # Equality counts as reached (0.30 announced at 900).
        assert t.first_reach_after(650.0, 0.30) == 900.0


class TestSlicing:
    def test_slice_restamps_start(self):
        t = _trace()
        s = t.slice(450.0, 900.0)
        assert s.start == 450.0
        assert s.price_at(450.0) == 0.20
        assert len(s) == 2  # announcement at 600 plus the restamped one

    def test_slice_carries_labels(self):
        s = _trace().slice(0.0, 600.0)
        assert s.instance_type == "c4.large"
        assert s.zone == "us-east-1b"

    def test_window_before(self):
        t = _trace()
        w = t.window_before(900.0, 600.0)
        assert w.start == 300.0
        assert w.end < 900.0
        with pytest.raises(ValueError):
            t.window_before(0.0, 600.0)

    def test_slice_validation(self):
        with pytest.raises(ValueError):
            _trace().slice(600.0, 600.0)


class TestStatsAndIO:
    def test_mean_price_time_weighted(self):
        t = PriceTrace(
            np.array([0.0, 100.0, 400.0]), np.array([1.0, 2.0, 9.0])
        )
        # 1.0 for 100 s, 2.0 for 300 s -> (100 + 600) / 400.
        assert t.mean_price() == pytest.approx(1.75)

    def test_mean_price_single_point(self):
        t = PriceTrace(np.array([0.0]), np.array([3.0]))
        assert t.mean_price() == 3.0

    def test_csv_roundtrip(self):
        t = _trace()
        back = PriceTrace.from_csv(t.to_csv(), "c4.large", "us-east-1b")
        np.testing.assert_array_equal(back.times, t.times)
        np.testing.assert_array_equal(back.prices, t.prices)

    def test_csv_header_checked(self):
        with pytest.raises(ValueError):
            PriceTrace.from_csv("a,b\n1,2\n")

    def test_json_roundtrip(self):
        t = _trace()
        back = PriceTrace.from_json(t.to_json())
        np.testing.assert_array_equal(back.prices, t.prices)
        assert back.zone == t.zone

    def test_with_labels(self):
        t = _trace().with_labels("m1.large", "us-west-2c")
        assert t.instance_type == "m1.large"
        np.testing.assert_array_equal(t.prices, _trace().prices)
