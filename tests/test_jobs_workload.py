"""Unit tests for jobs, queues, workload generation and profiles."""

import numpy as np
import pytest

from repro.provisioner.jobs import Job, JobQueue
from repro.provisioner.profiles import (
    DEFAULT_PROFILES,
    estimate_runtime,
    profile_for,
)
from repro.provisioner.workload import (
    WorkloadConfig,
    generate_workload,
    paper_replay_workload,
)


def _job(i=0, app="fastqc"):
    return Job(
        job_id=i, app=app, submit_time=0.0,
        runtime=100.0, estimated_runtime=110.0,
    )


class TestJob:
    def test_validation(self):
        with pytest.raises(ValueError):
            Job(0, "a", 0.0, runtime=0.0, estimated_runtime=1.0)
        with pytest.raises(ValueError):
            Job(0, "a", 0.0, runtime=1.0, estimated_runtime=0.0)

    def test_done_flag(self):
        job = _job()
        assert not job.done
        job.finished_at = 5.0
        assert job.done


class TestJobQueue:
    def test_fifo_per_type(self):
        q = JobQueue()
        q.push("m3.medium", _job(1))
        q.push("m3.medium", _job(2))
        q.push("c3.2xlarge", _job(3))
        assert q.depth("m3.medium") == 2
        assert q.total_depth() == 3
        assert q.pop("m3.medium").job_id == 1
        assert q.pop("m3.medium").job_id == 2
        assert q.pop("m3.medium") is None

    def test_push_front_for_revoked(self):
        q = JobQueue()
        q.push("t", _job(1))
        q.push_front("t", _job(2))
        assert q.pop("t").job_id == 2

    def test_instance_types_listing(self):
        q = JobQueue()
        q.push("a.b", _job(1))
        q.push("c.d", _job(2))
        q.pop("c.d")
        assert q.instance_types() == ("a.b",)


class TestProfiles:
    def test_lookup(self):
        profile = profile_for("align-bwa")
        assert profile.instance_type == "c3.2xlarge"
        with pytest.raises(KeyError):
            profile_for("minesweeper")

    def test_weights_positive(self):
        assert all(p.weight > 0 for p in DEFAULT_PROFILES)

    def test_estimate_centred_on_truth(self, rng):
        profile = profile_for("fastqc")
        estimates = [
            estimate_runtime(profile, 600.0, rng) for _ in range(500)
        ]
        # Lognormal with sigma 0.25 around the truth: median near 600.
        assert 500 < np.median(estimates) < 720
        with pytest.raises(ValueError):
            estimate_runtime(profile, 0.0, rng)


class TestWorkload:
    def test_shape_of_full_day(self):
        jobs = generate_workload(WorkloadConfig(n_jobs=500), rng=1)
        assert len(jobs) == 500
        submits = [j.submit_time for j in jobs]
        assert submits == sorted(submits)
        assert all(0 <= s <= 24 * 3600 + 600 for s in submits)
        assert [j.job_id for j in jobs] == list(range(500))

    def test_app_mix_respects_weights(self):
        jobs = generate_workload(WorkloadConfig(n_jobs=2000), rng=2)
        counts = {}
        for job in jobs:
            counts[job.app] = counts.get(job.app, 0) + 1
        # The heaviest apps must dominate the lightest.
        assert counts["fastqc"] > counts["annotate"]

    def test_runtimes_clamped(self):
        jobs = generate_workload(WorkloadConfig(n_jobs=1000), rng=3)
        assert all(30.0 <= j.runtime <= 6 * 3600.0 for j in jobs)

    def test_deterministic(self):
        a = generate_workload(WorkloadConfig(n_jobs=100), rng=7)
        b = generate_workload(WorkloadConfig(n_jobs=100), rng=7)
        assert [(j.app, j.submit_time, j.runtime) for j in a] == [
            (j.app, j.submit_time, j.runtime) for j in b
        ]

    def test_replay_slice_rebased(self):
        jobs = paper_replay_workload(rng=4, n_jobs=200)
        assert len(jobs) == 200
        assert jobs[0].submit_time == 0.0
        assert all(j.submit_time >= 0 for j in jobs)
        # 200 of 8452 jobs spans well under a day.
        assert jobs[-1].submit_time < 6 * 3600.0

    def test_validation(self):
        with pytest.raises(ValueError):
            WorkloadConfig(n_jobs=0)
        with pytest.raises(ValueError):
            WorkloadConfig(burst_mean=0.5)
