"""Shared fixtures: small, session-cached market universes and traces.

Everything here is deterministic; session scoping keeps the expensive
trace/QBETS computations shared across test modules.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.drafts import DraftsConfig, DraftsPredictor
from repro.market.synthetic import generate_trace
from repro.market.universe import Universe, UniverseConfig

#: Epochs per day at the 5-minute epoch length.
EPD = 288


@pytest.fixture(scope="session")
def small_universe() -> Universe:
    """A 70-day universe (40-day training + 30-day test windows)."""
    return Universe(UniverseConfig(seed=5, n_epochs=70 * EPD))


@pytest.fixture(scope="session")
def calm_trace():
    """A 40-day calm trace (On-demand price $0.42)."""
    return generate_trace("calm", 0.42, n_epochs=40 * EPD, rng=7)


@pytest.fixture(scope="session")
def spiky_trace():
    """A 40-day spiky trace (plateaus above On-demand)."""
    return generate_trace("spiky", 0.42, n_epochs=40 * EPD, rng=7)


@pytest.fixture(scope="session")
def volatile_trace():
    """A 40-day heavy-tailed volatile trace."""
    return generate_trace("volatile", 0.42, n_epochs=40 * EPD, rng=7)


@pytest.fixture(scope="session")
def premium_trace():
    """A 40-day premium trace (pinned above On-demand)."""
    return generate_trace("premium", 0.42, n_epochs=40 * EPD, rng=7)


@pytest.fixture(scope="session")
def spiky_predictor(spiky_trace) -> DraftsPredictor:
    """A fitted p=0.95 DrAFTS predictor on the spiky trace."""
    return DraftsPredictor(spiky_trace, DraftsConfig(probability=0.95))


@pytest.fixture()
def rng() -> np.random.Generator:
    """A fresh deterministic generator per test."""
    return np.random.default_rng(12345)
