"""Unit tests for the binomial order-statistic confidence bounds."""

import numpy as np
import pytest
from scipy import stats

from repro.core import binomial


class TestMinHistory:
    def test_paper_defaults_upper(self):
        # q = sqrt(0.95), c = 0.99 -> 180 observations (DESIGN.md section 4).
        q = np.sqrt(0.95)
        n = binomial.min_history_upper(q, 0.99)
        assert n == 180
        # The bound must exist exactly at n and not at n - 1.
        assert binomial.upper_bound_index(n, q, 0.99) >= 0
        assert binomial.upper_bound_index(n - 1, q, 0.99) == -1

    def test_p99_needs_more_history(self):
        q95 = binomial.min_history_upper(np.sqrt(0.95), 0.99)
        q99 = binomial.min_history_upper(np.sqrt(0.99), 0.99)
        assert q99 > q95

    def test_lower_mirrors_upper(self):
        assert binomial.min_history_lower(0.025, 0.99) == (
            binomial.min_history_upper(0.975, 0.99)
        )

    def test_invalid_probabilities_rejected(self):
        with pytest.raises(ValueError):
            binomial.min_history_upper(1.0, 0.99)
        with pytest.raises(ValueError):
            binomial.min_history_upper(0.9, 0.0)


class TestUpperBoundIndex:
    def test_definition_holds(self):
        # k must be the largest integer with BinCDF(k; n, 1-q) <= 1-c.
        n, q, c = 500, 0.975, 0.99
        k = binomial.upper_bound_index(n, q, c)
        assert k >= 0
        assert stats.binom.cdf(k, n, 1 - q) <= 1 - c
        assert stats.binom.cdf(k + 1, n, 1 - q) > 1 - c

    def test_short_history_returns_minus_one(self):
        assert binomial.upper_bound_index(10, 0.975, 0.99) == -1
        assert binomial.upper_bound_index(0, 0.975, 0.99) == -1

    def test_vectorised_matches_scalar(self):
        ns = np.arange(0, 2000, 37)
        vec = binomial.upper_bound_index(ns, 0.975, 0.99)
        scalars = [binomial.upper_bound_index(int(n), 0.975, 0.99) for n in ns]
        assert list(vec) == scalars

    def test_monotone_in_n(self):
        ns = np.arange(1, 5000)
        ks = binomial.upper_bound_index(ns, 0.975, 0.99)
        assert np.all(np.diff(ks) >= 0)

    def test_index_within_sample(self):
        ns = np.arange(1, 3000, 13)
        ks = binomial.upper_bound_index(ns, 0.5, 0.9)
        assert np.all(ks < ns)


class TestBoundValues:
    def test_upper_value_is_an_observation(self, rng):
        x = rng.normal(size=400)
        bound = binomial.upper_bound_value(x, 0.9, 0.95)
        assert bound in x

    def test_upper_value_nan_when_short(self, rng):
        x = rng.normal(size=20)
        assert np.isnan(binomial.upper_bound_value(x, 0.975, 0.99))

    def test_lower_below_upper(self, rng):
        x = rng.normal(size=2000)
        lower = binomial.lower_bound_value(x, 0.5, 0.99)
        upper = binomial.upper_bound_value(x, 0.5, 0.99)
        assert lower < upper

    def test_upper_bound_coverage(self, rng):
        """The c-confidence bound covers the true quantile >= c of the time."""
        q, c, n, trials = 0.9, 0.9, 300, 400
        true_q = stats.norm.ppf(q)
        covered = 0
        for _ in range(trials):
            x = rng.normal(size=n)
            bound = binomial.upper_bound_value(x, q, c)
            covered += bound >= true_q
        # Binomial(400, >=0.9) rarely dips below 0.86.
        assert covered / trials >= 0.86

    def test_lower_bound_coverage(self, rng):
        q, c, n, trials = 0.1, 0.9, 300, 400
        true_q = stats.norm.ppf(q)
        covered = 0
        for _ in range(trials):
            x = rng.normal(size=n)
            bound = binomial.lower_bound_value(x, q, c)
            covered += bound <= true_q
        assert covered / trials >= 0.86

    def test_tightest_valid_index(self, rng):
        """A deeper order statistic than k would break the confidence claim."""
        n, q, c = 1000, 0.95, 0.99
        k = binomial.upper_bound_index(n, q, c)
        # Using k+1 (one less conservative) must violate the inequality.
        assert stats.binom.cdf(k + 1, n, 1 - q) > 1 - c
