"""Bit-level equivalence of the batched phase-2 kernels and scalar paths.

The batched kernels (``DurationLadder.duration_matrix``, ``bid_for_many``,
``curve_at``) and the counting/binary-search rung selection are pure
optimisations: every test here pins them to the original scalar reference
implementations (``durations_at``, ``duration_bound``, ``bid_for``) with
exact (``==``, not ``approx``) comparisons over randomised traces and the
edge cases that shaped the code — nan bids at early instants, queries at
the trace boundaries, and the ablation configs that disable the fast paths.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.drafts import DraftsConfig, DraftsPredictor
from repro.core.curves import bid_ladder
from repro.market.synthetic import generate_trace

#: Epochs per day at the 5-minute epoch length.
EPD = 288


@pytest.fixture(scope="module", params=["calm", "spiky", "volatile"])
def predictor(request) -> DraftsPredictor:
    """A fitted 20-day predictor per volatility class."""
    trace = generate_trace(request.param, 0.42, n_epochs=20 * EPD, rng=11)
    return DraftsPredictor(trace, DraftsConfig(probability=0.95))


def _query_instants(pred: DraftsPredictor, rng: np.random.Generator) -> list[int]:
    """Instants spanning warm-up, steady state and both trace boundaries."""
    n = len(pred.trace)
    sampled = rng.integers(0, n + 1, size=40).tolist()
    return sorted(set(sampled) | {0, 1, 2, n - 1, n})


class TestDurationMatrix:
    """``duration_matrix`` row-for-row against scalar ``durations_at``."""

    def test_rows_match_durations_at(self, predictor, rng):
        ladder = predictor._ladder
        n_rungs = ladder.levels.size
        for t_idx in _query_instants(predictor, rng)[::3]:
            for s0 in {0, t_idx // 2, t_idx}:
                matrix = ladder.duration_matrix(t_idx, s0)
                assert matrix.shape == (n_rungs, t_idx - s0)
                for rung in range(0, n_rungs, max(1, n_rungs // 7)):
                    expected = ladder.durations_at(rung, t_idx)[s0:]
                    np.testing.assert_array_equal(matrix[rung], expected)

    def test_rung_subset_matches_full_matrix(self, predictor, rng):
        ladder = predictor._ladder
        t_idx = len(predictor.trace) // 2
        rungs = np.sort(
            rng.choice(ladder.levels.size, size=5, replace=False)
        )
        full = ladder.duration_matrix(t_idx)
        sub = ladder.duration_matrix(t_idx, rungs=rungs)
        np.testing.assert_array_equal(sub, full[rungs])

    def test_empty_window_and_validation(self, predictor):
        ladder = predictor._ladder
        empty = ladder.duration_matrix(5, s0=5)
        assert empty.shape == (ladder.levels.size, 0)
        with pytest.raises(IndexError):
            ladder.duration_matrix(len(predictor.trace) + 1)
        with pytest.raises(ValueError):
            ladder.duration_matrix(3, s0=4)


class TestBidForMany:
    """Batched bid queries against the scalar loop, bit for bit."""

    def _assert_matches_scalar(self, pred, durations, t_idxs):
        batched = pred.bid_for_many(durations, t_idxs)
        scalar = np.array(
            [
                pred.bid_for(float(d), int(t))
                for d, t in zip(durations, t_idxs)
            ]
        )
        np.testing.assert_array_equal(batched, scalar)
        return batched

    def test_randomised_queries(self, predictor, rng):
        n = len(predictor.trace)
        t_idxs = rng.integers(0, n + 1, size=120)
        durations = rng.uniform(300.0, 12 * 3600.0, size=120)
        bids = self._assert_matches_scalar(predictor, durations, t_idxs)
        # The sweep must exercise both outcomes to mean anything.
        assert np.isnan(bids).any()
        assert np.isfinite(bids).any()

    def test_duplicate_and_unsorted_queries(self, predictor, rng):
        # The batched path sorts by instant and reuses duplicate queries;
        # results must still come back in caller order.
        n = len(predictor.trace)
        base_t = rng.integers(0, n + 1, size=20)
        base_d = rng.uniform(600.0, 6 * 3600.0, size=20)
        t_idxs = np.concatenate([base_t, base_t[::-1], base_t])
        durations = np.concatenate([base_d, base_d[::-1], base_d])
        self._assert_matches_scalar(predictor, durations, t_idxs)

    def test_warmup_instants_are_nan(self, predictor):
        # Early instants have no phase-1 bound yet: nan from both paths.
        t_idxs = np.arange(0, 6)
        durations = np.full(t_idxs.size, 3600.0)
        bids = self._assert_matches_scalar(predictor, durations, t_idxs)
        assert np.isnan(bids).all()

    def test_trace_boundary_instants(self, predictor):
        n = len(predictor.trace)
        t_idxs = np.array([0, n - 1, n, n - 1, 0])
        durations = np.array([3600.0, 3600.0, 3600.0, 1e9, 1e9])
        self._assert_matches_scalar(predictor, durations, t_idxs)

    def test_unsatisfiable_durations_are_nan(self, predictor):
        # A duration beyond the whole trace defeats every ladder rung.
        t_idx = len(predictor.trace) - 1
        bids = self._assert_matches_scalar(
            predictor, np.array([1e12]), np.array([t_idx])
        )
        assert np.isnan(bids[0])

    def test_empty_and_invalid_input(self, predictor):
        assert predictor.bid_for_many(np.array([]), np.array([])).size == 0
        with pytest.raises(ValueError):
            predictor.bid_for_many(np.array([-1.0]), np.array([10]))
        with pytest.raises(ValueError):
            predictor.bid_for_many(np.array([1.0, 2.0]), np.array([10]))


class TestFirstRungCovering:
    """The binary search returns the *first* covering rung, certified by
    the independent partition-based ``duration_bound`` reference."""

    def test_returned_rung_is_first_covering(self, predictor, rng):
        levels = predictor._ladder.levels
        n = len(predictor.trace)
        checked = 0
        for t_idx in rng.integers(n // 2, n + 1, size=25).tolist():
            duration = float(rng.uniform(1800.0, 8 * 3600.0))
            bid = predictor.bid_for(duration, t_idx)
            if math.isnan(bid):
                continue
            checked += 1
            bound = predictor.duration_bound(bid, t_idx)
            assert bound >= duration
            rung = int(np.searchsorted(levels, bid, side="left"))
            min_bid = predictor.min_bid_at(t_idx)
            start = int(np.searchsorted(levels, min_bid, side="left"))
            if rung > start:
                below = predictor.duration_bound(
                    float(levels[rung - 1]), t_idx
                )
                assert math.isnan(below) or below < duration
        assert checked > 5


def _reference_curve_durations(pred: DraftsPredictor, t_idx: int) -> np.ndarray:
    """Scalar Figure-4 curve: per-rung ``duration_bound`` + running max."""
    cfg = pred.config
    min_bid = pred.min_bid_at(t_idx)
    rungs = bid_ladder(min_bid, cfg.ladder_increment, cfg.ladder_span)
    durations = np.array(
        [pred.duration_bound(float(b), t_idx) for b in rungs]
    )
    filled = np.where(np.isnan(durations), -np.inf, durations)
    mono = np.maximum.accumulate(filled)
    return np.where(np.isinf(mono), np.nan, mono)


class TestCurveAt:
    def test_matches_scalar_reference(self, predictor, rng):
        n = len(predictor.trace)
        for t_idx in rng.integers(n // 4, n + 1, size=10).tolist():
            curve = predictor.curve_at(t_idx)
            if curve is None:
                assert math.isnan(predictor.min_bid_at(t_idx))
                continue
            expected = _reference_curve_durations(predictor, t_idx)
            np.testing.assert_array_equal(
                np.array(curve.durations), expected
            )

    def test_warmup_returns_none(self, predictor):
        assert predictor.curve_at(0) is None


class TestAblationConfigs:
    """The slow ablation paths must agree with the scalar loop too."""

    @pytest.fixture(scope="class", params=["autocorr", "truncate"])
    def ablated(self, request) -> DraftsPredictor:
        overrides = {
            "autocorr": {"autocorr_durations": True},
            "truncate": {"truncate_durations": True},
        }[request.param]
        trace = generate_trace("spiky", 0.42, n_epochs=15 * EPD, rng=13)
        config = DraftsConfig(probability=0.95).with_(**overrides)
        return DraftsPredictor(trace, config)

    def test_bid_for_many_matches_scalar(self, ablated, rng):
        n = len(ablated.trace)
        t_idxs = rng.integers(0, n + 1, size=60)
        durations = rng.uniform(600.0, 10 * 3600.0, size=60)
        batched = ablated.bid_for_many(durations, t_idxs)
        scalar = np.array(
            [
                ablated.bid_for(float(d), int(t))
                for d, t in zip(durations, t_idxs)
            ]
        )
        np.testing.assert_array_equal(batched, scalar)

    def test_curve_matches_scalar_reference(self, ablated, rng):
        n = len(ablated.trace)
        for t_idx in rng.integers(n // 2, n + 1, size=5).tolist():
            curve = ablated.curve_at(t_idx)
            if curve is None:
                continue
            expected = _reference_curve_durations(ablated, t_idx)
            np.testing.assert_array_equal(
                np.array(curve.durations), expected
            )


class TestFrozenReplayDriver:
    """The frozen-key universe replay (``drafts_bids``) must answer every
    backtest query bit-identically to the per-combo scalar strategy path
    (``DraftsBid.bid_at_many``), which itself pins to ``bid_for``."""

    def test_matches_per_combo_strategy(self):
        from repro.backtest.engine import sample_requests
        from repro.backtest.universe_driver import drafts_bids
        from repro.baselines.drafts_strategy import DraftsBid
        from repro.experiments.common import SCALES, scaled_combos, scaled_universe
        from repro.util.rng import RngFactory

        universe = scaled_universe("test")
        combos = list(scaled_combos("test"))[:3]
        config = SCALES["test"].backtest_config(0.99)
        replay = drafts_bids(universe, combos, config)
        assert sorted(replay) == sorted(c.key for c in combos)
        saw_finite = saw_nan = False
        for combo in combos:
            trace = universe.trace(combo)
            strategy = DraftsBid.for_combo(combo, trace, config.probability)
            rng = RngFactory(config.seed).generator(f"backtest/{combo.key}")
            t_idxs, durations = sample_requests(trace, config, rng)
            expected = strategy.bid_at_many(t_idxs, durations)
            np.testing.assert_array_equal(replay[combo.key], expected)
            saw_finite |= bool(np.isfinite(expected).any())
            saw_nan |= bool(np.isnan(expected).any())
        # The sweep must exercise both real bids and fallback rows.
        assert saw_finite

    def test_backtest_accepts_injected_bids(self):
        """``run_backtest(bids=...)`` with the replayed bids reproduces the
        strategy-path result object exactly."""
        from repro.backtest.engine import run_backtest
        from repro.backtest.universe_driver import drafts_bids
        from repro.baselines.drafts_strategy import DraftsBid
        from repro.experiments.common import SCALES, scaled_combos, scaled_universe

        universe = scaled_universe("test")
        combo = list(scaled_combos("test"))[0]
        config = SCALES["test"].backtest_config(0.99)
        bids = drafts_bids(universe, [combo], config)[combo.key]
        direct = run_backtest(universe, combo, DraftsBid, config)
        injected = run_backtest(
            universe, combo, DraftsBid, config, bids=bids
        )
        assert injected == direct
        with pytest.raises(ValueError):
            run_backtest(
                universe, combo, DraftsBid, config, bids=bids[:-1]
            )


class TestParallelEquivalence:
    """Worker fan-out must not change a single bit of any artefact."""

    def test_table4_workers_identical(self):
        from repro.experiments.tables45 import run_table4

        seq = run_table4(scale="test", workers=0)
        par = run_table4(scale="test", workers=2)
        assert par == seq

    def test_figure1_workers_identical(self):
        from repro.experiments.figure1 import run_figure1

        seq = run_figure1(scale="test", workers=0)
        par = run_figure1(scale="test", workers=2)
        assert par == seq
