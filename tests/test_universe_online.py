"""Bit-identity tests for the SoA universe ticker.

:class:`~repro.core.universe.UniverseTicker` is a pure optimisation over a
dict of scalar :class:`~repro.core.online.OnlineDraftsPredictor`\\ s: every
test here pins the batched structure-of-arrays path to the scalar reference
with exact comparisons, across the hard cases that shaped the code — QBETS
change-point epochs, per-key ladder re-anchors mid-batch, keys joining and
leaving the universe mid-run, zero-delta epochs where only a subset of keys
tick, snapshot/restore, and the frozen-key backtest replay whose censor
instant must match the batch predictor's interior-``t_idx`` convention.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.drafts import DraftsConfig, DraftsPredictor
from repro.core.online import OnlineDraftsPredictor
from repro.core.universe import UniverseTicker
from repro.market.synthetic import generate_trace

EPD = 288

#: Query durations spanning sub-epoch to multi-day (and one unsatisfiable).
DURATIONS = (1800.0, 3600.0, 6 * 3600.0, 86400.0, 1e12)

CONFIG = DraftsConfig(probability=0.95)


def curves_equal(a, b) -> bool:
    """Bit-equality of curves, with nan == nan allowed per rung."""
    if a is None or b is None:
        return a is b
    if a.bids != b.bids:
        return False
    if (a.probability, a.computed_at) != (b.probability, b.computed_at):
        return False
    return all(
        x == y or (math.isnan(x) and math.isnan(y))
        for x, y in zip(a.durations, b.durations)
    )


def assert_floats_equal(a: float, b: float) -> None:
    if math.isnan(a) or math.isnan(b):
        assert math.isnan(a) and math.isnan(b)
    else:
        assert a == b


def make_traces(n_epochs: int):
    """One trace per volatility class, on the shared epoch grid."""
    # Seeds chosen so the 6-day spiky trace trips a QBETS change point.
    seeds = {"calm": 30, "diurnal": 31, "spiky": 17, "volatile": 33}
    return {
        f"{cls}-{i}": generate_trace(cls, 0.42, n_epochs=n_epochs, rng=seed)
        for i, (cls, seed) in enumerate(seeds.items())
    }


class TestLiveEquivalence:
    """Per-epoch lockstep: tick the universe, tick the scalars, compare."""

    def test_tracks_scalar_through_changepoints_and_reanchors(self):
        n_epochs = 6 * EPD
        traces = make_traces(n_epochs)
        keys = sorted(traces)

        # Checkpoints must straddle a QBETS change point exactly: pull the
        # reset epochs from a batch fit of the spiky trace and compare at
        # cp - 1, cp and cp + 1 in addition to the regular cadence.
        spiky_key = next(k for k in keys if k.startswith("spiky"))
        batch = DraftsPredictor(traces[spiky_key], CONFIG)
        cps = batch.changepoints
        assert len(cps) > 0, "fixture must trigger a QBETS reset"
        checkpoints = set(range(200, n_epochs, 131)) | {n_epochs - 1}
        for cp in cps:
            checkpoints |= {int(cp) - 1, int(cp), int(cp) + 1}

        ticker = UniverseTicker(CONFIG)
        scalars = {}
        for k in keys:
            cls, zone = k.split("-", 1)
            ticker.add_key(k, instance_type=cls, zone=zone)
            scalars[k] = OnlineDraftsPredictor(CONFIG)

        ladders_seen = {k: set() for k in keys}
        for t in range(n_epochs):
            time = float(traces[keys[0]].times[t])
            ticker.observe(
                time, np.array([traces[k].prices[t] for k in keys])
            )
            for k in keys:
                scalars[k].observe(time, float(traces[k].prices[t]))
            if t in checkpoints:
                batch_curves = ticker.curves()
                for k in keys:
                    cls, zone = k.split("-", 1)
                    assert curves_equal(
                        batch_curves[k], scalars[k].curve(cls, zone)
                    ), f"curve diverged at t={t} for {k}"
                    for d in DURATIONS:
                        assert_floats_equal(
                            ticker.bid_for(k, d), scalars[k].bid_for(d)
                        )
                    if batch_curves[k] is not None:
                        ladders_seen[k].add(batch_curves[k].bids)

        # The sweep must have exercised a mid-run ladder re-anchor (the
        # minimum bid moved enough to rebuild a key's rung layout) for the
        # equivalence to mean anything.
        assert any(len(s) > 1 for s in ladders_seen.values())

    def test_zero_delta_epochs_with_key_subsets(self):
        """Keys without an announcement this epoch keep answering from
        their existing history — tick with ``keys=`` subsets."""
        n_epochs = 4 * EPD
        traces = make_traces(n_epochs)
        keys = sorted(traces)
        ticker = UniverseTicker(CONFIG)
        scalars = {}
        for k in keys:
            ticker.add_key(k)
            scalars[k] = OnlineDraftsPredictor(CONFIG)

        for t in range(n_epochs):
            # Deterministic staggering: key i announces every (i + 1)
            # epochs, so every epoch is a zero-delta epoch for someone.
            ticked = [k for i, k in enumerate(keys) if t % (i + 1) == 0]
            time = float(traces[keys[0]].times[t])
            ticker.observe(
                time, np.array([traces[k].prices[t] for k in ticked]),
                keys=ticked,
            )
            for k in ticked:
                scalars[k].observe(time, float(traces[k].prices[t]))
            if t % 157 == 0 or t == n_epochs - 1:
                for k in keys:
                    assert curves_equal(
                        ticker.curve_for(k), scalars[k].curve()
                    ), f"diverged at t={t} for {k}"

        # An empty tick is a no-op.
        before = ticker.curves()
        ticker.observe(1e12, np.empty(0), keys=[])
        after = ticker.curves()
        assert all(curves_equal(before[k], after[k]) for k in keys)

    def test_key_join_and_leave_mid_run(self):
        n_epochs = 4 * EPD
        traces = make_traces(n_epochs)
        keys = sorted(traces)
        join_cold, join_warm = n_epochs // 4, n_epochs // 2
        leave = 3 * n_epochs // 4

        ticker = UniverseTicker(CONFIG)
        scalars = {k: OnlineDraftsPredictor(CONFIG) for k in keys}
        enrolled = keys[:2]
        for k in enrolled:
            ticker.add_key(k)
        gone = None
        for t in range(n_epochs):
            if t == join_cold:
                # A cold key joins with no history.
                ticker.add_key(keys[2])
                enrolled = enrolled + [keys[2]]
            if t == join_warm:
                # A key joins by adopting a scalar predictor's state; the
                # reference keeps its own (identically-fed) twin.
                warm = OnlineDraftsPredictor(CONFIG)
                warm.extend(traces[keys[3]].times[:t], traces[keys[3]].prices[:t])
                scalars[keys[3]].extend(
                    traces[keys[3]].times[:t], traces[keys[3]].prices[:t]
                )
                ticker.add_key(keys[3], online=warm)
                enrolled = enrolled + [keys[3]]
            if t == leave:
                gone = enrolled[0]
                ticker.remove_key(gone)
                enrolled = enrolled[1:]
            time = float(traces[keys[0]].times[t])
            order = ticker.keys()
            assert sorted(order) == sorted(enrolled)
            ticker.observe(
                time, np.array([traces[k].prices[t] for k in order]),
                keys=order,
            )
            for k in enrolled:
                scalars[k].observe(time, float(traces[k].prices[t]))
            if t % 97 == 0 or t in (
                join_cold, join_warm, leave, n_epochs - 1
            ):
                for k in enrolled:
                    assert curves_equal(
                        ticker.curve_for(k), scalars[k].curve()
                    ), f"diverged at t={t} for {k}"

        assert gone not in ticker
        with pytest.raises(KeyError):
            ticker.bid_for(gone, 3600.0)
        # The freed slot is recycled without inheriting the old key's state.
        ticker.add_key("recycled")
        assert ticker.n("recycled") == 0
        assert ticker.curve_for("recycled") is None

    def test_tick_is_observe_plus_curves(self):
        trace = generate_trace("calm", 0.42, n_epochs=3 * EPD, rng=9)
        a, b = UniverseTicker(CONFIG), UniverseTicker(CONFIG)
        a.add_key("k")
        b.add_key("k")
        for t in range(len(trace)):
            ticked = a.tick(float(trace.times[t]), [float(trace.prices[t])])
            b.observe(float(trace.times[t]), [float(trace.prices[t])])
            assert curves_equal(ticked["k"], b.curves()["k"])


class TestEjectHandoff:
    """``to_online`` / ``key_snapshot`` — the refit handoff must produce a
    scalar predictor bit-identical to one that never went batched."""

    def test_to_online_round_trip(self):
        trace = generate_trace("spiky", 0.42, n_epochs=6 * EPD, rng=8)
        half = len(trace) // 2
        ticker = UniverseTicker(CONFIG)
        ticker.add_key("k", instance_type="it", zone="z")
        reference = OnlineDraftsPredictor(CONFIG)
        for t in range(half):
            ticker.observe(float(trace.times[t]), [float(trace.prices[t])])
            reference.observe(float(trace.times[t]), float(trace.prices[t]))

        ejected = ticker.to_online("k")
        assert ejected.n == half
        assert curves_equal(ejected.curve("it", "z"),
                            reference.curve("it", "z"))
        # The ejected copy must track the reference through the remainder
        # scalar-side — including any QBETS resets in the second half.
        for t in range(half, len(trace)):
            ejected.observe(float(trace.times[t]), float(trace.prices[t]))
            reference.observe(float(trace.times[t]), float(trace.prices[t]))
        assert curves_equal(ejected.curve(), reference.curve())
        np.testing.assert_array_equal(
            ejected.as_batch().changepoints,
            reference.as_batch().changepoints,
        )

    def test_frozen_keys_have_no_scalar_form(self):
        ticker = UniverseTicker(CONFIG)
        ticker.add_key(
            "frozen",
            bounds=np.array([0.1, 0.1]),
            final_bound=0.1,
            levels=np.array([0.2, 0.3]),
        )
        with pytest.raises(ValueError):
            ticker.key_snapshot("frozen")


class TestSnapshotRestore:
    """Mirrors ``test_online.py::TestSnapshotRestore`` for the whole
    universe: a restored ticker must be bit-identical to the survivor."""

    def test_restored_tracks_survivor_after_more_epochs(self):
        n_epochs = 6 * EPD
        traces = make_traces(n_epochs)
        keys = sorted(traces)
        half = n_epochs // 2
        survivor = UniverseTicker(CONFIG)
        for k in keys:
            survivor.add_key(k, instance_type=k, zone="z")
        for t in range(half):
            survivor.observe(
                float(traces[keys[0]].times[t]),
                np.array([traces[k].prices[t] for k in keys]),
            )
        restored = UniverseTicker.from_snapshot(survivor.to_snapshot())
        assert restored.keys() == survivor.keys()
        for t in range(half, n_epochs):
            prices = np.array([traces[k].prices[t] for k in keys])
            time = float(traces[keys[0]].times[t])
            survivor.observe(time, prices)
            restored.observe(time, prices)
            if t % 131 == 0 or t == n_epochs - 1:
                sc, rc = survivor.curves(), restored.curves()
                for k in keys:
                    assert curves_equal(rc[k], sc[k]), f"t={t} {k}"
                    for d in DURATIONS:
                        assert_floats_equal(
                            restored.bid_for(k, d), survivor.bid_for(k, d)
                        )

    def test_disk_round_trip_is_bit_exact(self, tmp_path):
        """The framed ``.snap`` on-disk format (kind ``"universe"``), with
        a live and a frozen key in the same checkpoint."""
        from repro.service.persistence import (
            read_universe_snapshot,
            write_universe_snapshot,
        )

        trace = generate_trace("spiky", 0.42, n_epochs=5 * EPD, rng=8)
        fitted = DraftsPredictor(trace, CONFIG)
        half = len(trace) // 2
        ticker = UniverseTicker(CONFIG)
        ticker.add_key("live", instance_type="it", zone="z")
        ticker.add_key(
            ("frozen", "z", 0.95),
            bounds=fitted._bounds,
            final_bound=fitted._final_bound,
            levels=fitted._ladder.levels,
            max_price=fitted.config.max_price,
        )
        for t in range(half):
            price = float(trace.prices[t])
            ticker.observe(float(trace.times[t]), [price, price])

        path = tmp_path / "universe.snap"
        write_universe_snapshot(path, ticker)
        restored = read_universe_snapshot(path)
        assert restored.keys() == ticker.keys()
        for t in range(half, len(trace)):
            price = float(trace.prices[t])
            for tk in (ticker, restored):
                tk.observe(float(trace.times[t]), [price, price])
        assert curves_equal(
            restored.curve_for("live"), ticker.curve_for("live")
        )
        for d in DURATIONS:
            assert_floats_equal(
                restored.bid_for(("frozen", "z", 0.95), d),
                ticker.bid_for(("frozen", "z", 0.95), d),
            )

    def test_damaged_file_is_rejected(self, tmp_path):
        from repro.service.persistence import (
            SnapshotError,
            read_universe_snapshot,
            write_universe_snapshot,
        )

        ticker = UniverseTicker(CONFIG)
        ticker.add_key("k")
        path = tmp_path / "universe.snap"
        write_universe_snapshot(path, ticker)
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) - 7])  # torn write
        with pytest.raises(SnapshotError):
            read_universe_snapshot(path)

    def test_snapshot_does_not_alias_live_state(self):
        trace = generate_trace("calm", 0.42, n_epochs=3 * EPD, rng=5)
        half = len(trace) // 2
        ticker = UniverseTicker(CONFIG)
        ticker.add_key("k")
        for t in range(half):
            ticker.observe(float(trace.times[t]), [float(trace.prices[t])])
        frozen = ticker.to_snapshot()
        bound_then = ticker.price_bound("k")
        for t in range(half, len(trace)):
            ticker.observe(float(trace.times[t]), [float(trace.prices[t])])
        restored = UniverseTicker.from_snapshot(frozen)
        assert restored.n("k") == half
        assert_floats_equal(restored.price_bound("k"), bound_then)


class TestFrozenReplay:
    """Frozen keys replay a fitted batch predictor: at history ``[0, t)``
    with censor instant ``times[t]``, answers must match
    ``DraftsPredictor.bid_for(d, t)`` bit for bit."""

    @pytest.fixture(scope="class")
    def fitted(self):
        trace = generate_trace("spiky", 0.42, n_epochs=8 * EPD, rng=13)
        return trace, DraftsPredictor(trace, CONFIG)

    def _enroll(self, ticker, key, pred):
        ticker.add_key(
            key,
            bounds=pred._bounds,
            final_bound=pred._final_bound,
            levels=pred._ladder.levels,
            max_price=pred.config.max_price,
        )

    def test_observe_walk_matches_batch_bid_for(self, fitted, rng):
        trace, pred = fitted
        n = len(trace)
        query_ts = sorted(set(rng.integers(1, n, size=24).tolist()) | {1, n - 1})
        durations = [1800.0, 3600.0, 4 * 3600.0, 86400.0]
        ticker = UniverseTicker(CONFIG)
        self._enroll(ticker, "k", pred)
        fed = 0
        checked = 0
        for t in query_ts:
            while fed < t:
                ticker.observe(
                    float(trace.times[fed]), [float(trace.prices[fed])]
                )
                fed += 1
            for d in durations:
                got = ticker.bid_for("k", d, now=float(trace.times[t]))
                ref = pred.bid_for(d, t)
                assert_floats_equal(got, ref)
                if not math.isnan(ref):
                    checked += 1
        assert checked > 10

    def test_extend_frozen_equals_per_epoch_observe(self, fitted):
        trace, pred = fitted
        n = len(trace)
        stops = [n // 3, n // 2, n - 1]
        walked = UniverseTicker(CONFIG)
        bulk = UniverseTicker(CONFIG)
        for ticker in (walked, bulk):
            self._enroll(ticker, "k", pred)
        fed = 0
        for t in stops:
            for i in range(fed, t):
                walked.observe(
                    float(trace.times[i]), [float(trace.prices[i])]
                )
            bulk.extend_frozen(
                trace.times[fed:t],
                trace.prices[None, fed:t],
                pred._bounds[None, fed:t],
                np.array([pred._bounds[t] if t < n else pred._final_bound]),
            )
            fed = t
            assert bulk.n("k") == walked.n("k") == t
            assert curves_equal(bulk.curve_for("k"), walked.curve_for("k"))
            for d in (3600.0, 86400.0):
                assert_floats_equal(
                    bulk.bid_for("k", d, now=float(trace.times[t])),
                    walked.bid_for("k", d, now=float(trace.times[t])),
                )

    def test_extend_frozen_validation(self, fitted):
        trace, pred = fitted
        ticker = UniverseTicker(CONFIG)
        self._enroll(ticker, "k", pred)
        ticker.add_key("live")
        with pytest.raises(ValueError):  # live keys cannot fast-forward
            ticker.extend_frozen(
                trace.times[:4], trace.prices[None, :4],
                pred._bounds[None, :4], np.array([0.1]), keys=["live"],
            )
        with pytest.raises(ValueError):  # misaligned shapes
            ticker.extend_frozen(
                trace.times[:4], trace.prices[None, :3],
                pred._bounds[None, :4], np.array([0.1]), keys=["k"],
            )
        ticker.extend_frozen(
            trace.times[:4], trace.prices[None, :4],
            pred._bounds[None, :4], np.array([float(pred._bounds[4])]),
            keys=["k"],
        )
        with pytest.raises(ValueError):  # time must keep increasing
            ticker.extend_frozen(
                trace.times[:4], trace.prices[None, :4],
                pred._bounds[None, :4], np.array([0.1]), keys=["k"],
            )


class TestTickerMechanics:
    def test_rejects_ablation_configs(self):
        for override in (
            {"truncate_durations": True},
            {"autocorr_durations": True},
        ):
            with pytest.raises(ValueError):
                UniverseTicker(CONFIG.with_(**override))

    def test_add_key_validation(self):
        ticker = UniverseTicker(CONFIG)
        ticker.add_key("k")
        with pytest.raises(ValueError):
            ticker.add_key("k")  # duplicate
        with pytest.raises(ValueError):
            ticker.add_key("partial", bounds=np.array([0.1]))
        with pytest.raises(ValueError):
            ticker.add_key(
                "both",
                online=OnlineDraftsPredictor(CONFIG),
                bounds=np.array([0.1]),
                final_bound=0.1,
                levels=np.array([0.2]),
            )
        mismatched = OnlineDraftsPredictor(CONFIG.with_(probability=0.99))
        with pytest.raises(ValueError):
            ticker.add_key("wrong-config", online=mismatched)

    def test_observe_validation(self):
        ticker = UniverseTicker(CONFIG)
        ticker.add_key("a")
        ticker.add_key("b")
        with pytest.raises(ValueError):  # misaligned prices
            ticker.observe(0.0, [0.1])
        with pytest.raises(ValueError):  # non-positive price
            ticker.observe(0.0, [0.1, 0.0])
        ticker.observe(0.0, [0.1, 0.1])
        with pytest.raises(ValueError):  # time must strictly increase
            ticker.observe(0.0, [0.1, 0.1])

    def test_bid_for_now_guard(self):
        trace = generate_trace("calm", 0.42, n_epochs=3 * EPD, rng=4)
        pred = DraftsPredictor(trace, CONFIG)
        ticker = UniverseTicker(CONFIG)
        ticker.add_key(
            "k",
            bounds=pred._bounds,
            final_bound=pred._final_bound,
            levels=pred._ladder.levels,
            max_price=pred.config.max_price,
        )
        t = len(trace) // 2
        ticker.extend_frozen(
            trace.times[:t], trace.prices[None, :t],
            pred._bounds[None, :t], np.array([float(pred._bounds[t])]),
        )
        with pytest.raises(ValueError):
            ticker.bid_for("k", 3600.0, now=float(trace.times[t - 2]))

    def test_warmup_returns_nan_and_none(self):
        ticker = UniverseTicker(CONFIG)
        ticker.add_key("k")
        for i in range(50):
            ticker.observe(i * 300.0, [0.1])
        assert math.isnan(ticker.bid_for("k", 3600.0))
        assert ticker.curve_for("k") is None
        assert len(ticker) == 1 and "k" in ticker
