"""Unit tests for single-flight coalescing and the background refresher."""

import threading

import pytest

from repro.serving.clock import ManualClock
from repro.serving.metrics import MetricsRegistry
from repro.serving.refresher import BackgroundRefresher, SingleFlight
from repro.serving.store import EntryState, ShardedCurveStore

KEY = ("c4.large", "us-east-1b", 0.95)


def _wait_until(predicate, timeout=5.0):
    import time

    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.002)
    return False


class TestSingleFlight:
    def test_sequential_calls_each_lead(self):
        group = SingleFlight()
        result1, leader1 = group.execute(KEY, lambda: 1)
        result2, leader2 = group.execute(KEY, lambda: 2)
        assert (result1, leader1) == (1, True)
        assert (result2, leader2) == (2, True)

    def test_concurrent_calls_coalesce_deterministically(self):
        group = SingleFlight()
        release = threading.Event()
        calls = []
        results = []

        def compute():
            calls.append(1)
            release.wait(5.0)
            return "answer"

        def leader():
            results.append(group.execute(KEY, compute))

        def follower():
            results.append(group.execute(KEY, lambda: "wrong"))

        lead_thread = threading.Thread(target=leader)
        lead_thread.start()
        assert _wait_until(lambda: group.in_flight(KEY))

        followers = [threading.Thread(target=follower) for _ in range(7)]
        for thread in followers:
            thread.start()
        assert _wait_until(lambda: group.followers(KEY) == 7)

        release.set()
        lead_thread.join()
        for thread in followers:
            thread.join()

        assert len(calls) == 1  # exactly one compute for 8 callers
        assert [r[0] for r in results] == ["answer"] * 8
        assert sum(1 for r in results if r[1]) == 1  # one leader

    def test_leader_exception_propagates_to_followers(self):
        group = SingleFlight()
        release = threading.Event()
        outcomes = []

        def compute():
            release.wait(5.0)
            raise KeyError("nope")

        def run(fn):
            try:
                group.execute(KEY, fn)
                outcomes.append("ok")
            except KeyError:
                outcomes.append("raised")

        lead = threading.Thread(target=run, args=(compute,))
        lead.start()
        assert _wait_until(lambda: group.in_flight(KEY))
        follow = threading.Thread(target=run, args=(lambda: "unused",))
        follow.start()
        assert _wait_until(lambda: group.followers(KEY) == 1)
        release.set()
        lead.join()
        follow.join()
        assert outcomes == ["raised", "raised"]


class TestBackgroundRefresher:
    def _refresher(self, compute, **kwargs):
        store = ShardedCurveStore(refresh_seconds=900.0)
        metrics = MetricsRegistry()
        refresher = BackgroundRefresher(
            store, compute, metrics=metrics, clock=ManualClock(), **kwargs
        )
        return store, metrics, refresher

    def test_refresh_installs_versioned_entry(self):
        store, metrics, refresher = self._refresher(lambda key, now: None)
        entry, leader = refresher.refresh(KEY, 1000.0)
        assert leader
        assert entry.generation == 1
        assert entry.computed_at == 1000.0
        assert store.state_of(store.peek(KEY), 1000.0) is EntryState.FRESH
        assert metrics.counter("serving.recomputes").value == 1

    def test_run_pending_drains_in_priority_order(self):
        refreshed = []
        store, _, refresher = self._refresher(
            lambda key, now: refreshed.append(key)
        )
        hot = ("hot", "zone", 0.95)
        cold = ("cold", "zone", 0.95)
        store.put(hot, None, computed_at=0.0)
        store.put(cold, None, computed_at=0.0)
        for _ in range(10):  # make `hot` popular
            store.lookup(hot, 5000.0)
        refresher.poke(cold, 5000.0)
        refresher.poke(hot, 5000.0)
        assert refresher.run_pending() == 2
        assert refreshed == [hot, cold]  # same age, popularity breaks the tie

    def test_scan_enqueues_only_stale_entries(self):
        store, _, refresher = self._refresher(lambda key, now: None)
        fresh = ("fresh", "zone", 0.95)
        stale = ("stale", "zone", 0.95)
        store.put(fresh, None, computed_at=10_000.0)
        store.put(stale, None, computed_at=0.0)
        assert refresher.scan(now=10_100.0) == 1
        assert refresher.pending_count() == 1
        assert refresher.run_pending() == 1
        # The stale entry was recomputed at the scan instant.
        assert store.peek(stale).computed_at == 10_100.0

    def test_scan_budget_keeps_highest_priority_keys(self):
        refreshed = []
        store, _, refresher = self._refresher(
            lambda key, now: refreshed.append(key)
        )
        keys = [(f"type-{i}", "zone", 0.95) for i in range(5)]
        for i, key in enumerate(keys):
            store.put(key, None, computed_at=0.0)
            for _ in range(i):  # key i has popularity i
                store.lookup(key, 5000.0)
        assert refresher.scan(now=5000.0, budget=2) == 2
        assert refresher.run_pending() == 2
        # The two most popular stale keys won the budget.
        assert sorted(refreshed) == sorted(keys[-2:])
        with pytest.raises(ValueError):
            refresher.scan(now=5000.0, budget=-1)

    def test_drain_groups_same_probability_together(self):
        """The drain is batch-grouped: once a probability level is picked,
        its whole backlog drains before another level starts — same-config
        keys hit the service's batched tick back to back."""
        refreshed = []
        store, _, refresher = self._refresher(
            lambda key, now: refreshed.append(key)
        )
        keys = [
            (f"type-{i}", "zone", prob)
            for i in range(3)
            for prob in (0.95, 0.99)
        ]
        for i, key in enumerate(keys):
            store.put(key, None, computed_at=0.0)
            for _ in range(i):  # distinct popularity: interleaves levels
                store.lookup(key, 5000.0)
        assert refresher.scan(now=5000.0) == len(keys)
        assert refresher.run_pending() == len(keys)
        probs = [key[2] for key in refreshed]
        switches = sum(a != b for a, b in zip(probs, probs[1:]))
        assert switches == 1  # one contiguous run per probability level
        # Within the winning group, priority order still rules.
        first = [k for k in refreshed if k[2] == probs[0]]
        pops = [keys.index(k) for k in first]
        assert pops == sorted(pops, reverse=True)

    def test_scan_budget_larger_than_backlog_is_unbinding(self):
        store, _, refresher = self._refresher(lambda key, now: None)
        store.put(KEY, None, computed_at=0.0)
        assert refresher.scan(now=5000.0, budget=100) == 1

    def test_poke_keeps_latest_instant(self):
        seen = []
        _, _, refresher = self._refresher(
            lambda key, now: seen.append(now)
        )
        refresher.poke(KEY, 100.0)
        refresher.poke(KEY, 500.0)
        refresher.poke(KEY, 300.0)  # must not regress
        assert refresher.pending_count() == 1
        refresher.run_pending()
        assert seen == [500.0]

    def test_failures_counted_and_reported(self):
        failures = []

        def compute(key, now):
            raise RuntimeError("history API down")

        store = ShardedCurveStore()
        metrics = MetricsRegistry()
        refresher = BackgroundRefresher(
            store,
            compute,
            metrics=metrics,
            clock=ManualClock(),
            on_result=lambda key, error: failures.append((key, error)),
        )
        refresher.poke(KEY, 0.0)
        assert refresher.run_pending() == 1  # failure swallowed, counted
        assert metrics.counter("serving.refresh_failures").value == 1
        assert failures[0][0] == KEY
        assert isinstance(failures[0][1], RuntimeError)
        with pytest.raises(RuntimeError):
            refresher.refresh(KEY, 0.0)  # direct calls surface the error

    def test_threaded_workers_drain_pending(self):
        store, metrics, refresher = self._refresher(
            lambda key, now: None, n_workers=2
        )
        refresher.start()
        try:
            for i in range(20):
                refresher.poke(("t", f"zone-{i}", 0.95), float(i))
            assert _wait_until(lambda: refresher.pending_count() == 0)
            assert _wait_until(
                lambda: metrics.counter("serving.recomputes").value == 20
            )
        finally:
            refresher.stop()
        assert len(store) == 20
