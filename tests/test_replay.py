"""Integration tests for the workload replay (§4.3)."""

import pytest

from repro.provisioner.replay import ReplayConfig, run_replay
from repro.provisioner.workload import paper_replay_workload


@pytest.fixture(scope="module")
def replay_env(request):
    small_universe = request.getfixturevalue("small_universe")
    jobs = paper_replay_workload(rng=11, n_jobs=80)
    config = ReplayConfig(
        start_after_days=42.0, probability=0.99, seed=3,
        service_refresh_seconds=12 * 3600.0,
    )
    return small_universe, jobs, config


class TestReplay:
    def test_all_jobs_complete_under_each_policy(self, replay_env):
        universe, jobs, config = replay_env
        for policy in ("original", "drafts-1hr", "drafts-profiles"):
            result = run_replay(universe, jobs, policy, config)
            assert result.jobs_completed == len(jobs)
            assert result.policy == policy
            assert result.instances > 0
            assert result.cost > 0
            assert result.max_bid_cost >= result.cost * 0.5

    def test_risk_exceeds_cost_for_spot_heavy_policies(self, replay_env):
        universe, jobs, config = replay_env
        result = run_replay(universe, jobs, "original", config)
        # The bid (80% of On-demand) is far above typical market prices.
        assert result.max_bid_cost > result.cost

    def test_drafts_reduces_risk(self, replay_env):
        """Tables 2-3's headline: DrAFTS cuts the worst-case cost."""
        universe, jobs, config = replay_env
        original = run_replay(universe, jobs, "original", config)
        drafts = run_replay(universe, jobs, "drafts-1hr", config)
        assert drafts.max_bid_cost < original.max_bid_cost

    def test_terminated_jobs_are_resubmitted(self, replay_env):
        universe, jobs, config = replay_env
        result = run_replay(universe, jobs, "original", config)
        # Terminations and resubmissions are consistent: every price
        # termination that interrupted a running job produced one
        # resubmission.
        assert result.resubmissions <= result.terminations + 1
        assert result.jobs_completed == len(jobs)

    def test_deterministic(self, replay_env):
        universe, jobs, config = replay_env
        a = run_replay(universe, jobs, "original", config)
        b = run_replay(universe, jobs, "original", config)
        assert a == b

    def test_input_jobs_not_mutated(self, replay_env):
        universe, jobs, config = replay_env
        run_replay(universe, jobs, "original", config)
        assert all(job.finished_at is None for job in jobs)
        assert all(job.attempts == 0 for job in jobs)

    def test_unknown_policy_rejected(self, replay_env):
        universe, jobs, config = replay_env
        with pytest.raises(ValueError):
            run_replay(universe, jobs, "chaos-monkey", config)

    def test_makespan_covers_submission_window(self, replay_env):
        universe, jobs, config = replay_env
        result = run_replay(universe, jobs, "original", config)
        assert result.makespan_seconds >= jobs[-1].submit_time
