"""Tests for the process-wide predictor cache (`repro.backtest.predcache`)."""

from __future__ import annotations

import pytest

from repro.backtest import predcache
from repro.core.drafts import DraftsConfig
from repro.market.synthetic import generate_trace

EPD = 288


@pytest.fixture(autouse=True)
def fresh_cache():
    """Isolate every test from process-wide cache state."""
    predcache.clear()
    predcache.set_max_entries(predcache.DEFAULT_MAX_ENTRIES)
    yield
    predcache.clear()
    predcache.set_max_entries(predcache.DEFAULT_MAX_ENTRIES)


@pytest.fixture(scope="module")
def trace():
    return generate_trace("calm", 0.42, n_epochs=5 * EPD, rng=21)


class TestFingerprint:
    def test_deterministic_and_content_sensitive(self, trace):
        assert predcache.trace_fingerprint(trace) == predcache.trace_fingerprint(
            trace
        )
        other = generate_trace("calm", 0.42, n_epochs=5 * EPD, rng=22)
        assert predcache.trace_fingerprint(trace) != predcache.trace_fingerprint(
            other
        )

    def test_identity_sensitive(self, trace):
        # Same price series under a different combo identity is a
        # different key (predictors embed the combo identity).
        clone = type(trace)(
            instance_type=trace.instance_type,
            zone="other-zone-1a",
            times=trace.times,
            prices=trace.prices,
        )
        assert predcache.trace_fingerprint(trace) != predcache.trace_fingerprint(
            clone
        )


class TestGetPredictor:
    def test_second_fetch_is_a_hit_and_shares_the_object(self, trace):
        config = DraftsConfig(probability=0.95)
        first = predcache.get_predictor(trace, config)
        second = predcache.get_predictor(trace, config)
        assert second is first
        info = predcache.cache_info()
        assert info["hits"] == 1
        assert info["misses"] == 1
        assert info["size"] == 1

    def test_config_is_part_of_the_key(self, trace):
        a = predcache.get_predictor(trace, DraftsConfig(probability=0.95))
        b = predcache.get_predictor(trace, DraftsConfig(probability=0.99))
        assert a is not b
        assert predcache.cache_info()["misses"] == 2

    def test_predictions_match_a_fresh_fit(self, trace):
        from repro.core.drafts import DraftsPredictor

        config = DraftsConfig(probability=0.95)
        cached = predcache.get_predictor(trace, config)
        fresh = DraftsPredictor(trace, config)
        t_idx = len(trace) - 1
        assert cached.bid_for(3600.0, t_idx) == fresh.bid_for(3600.0, t_idx)

    def test_lru_eviction(self, trace):
        predcache.set_max_entries(2)
        configs = [DraftsConfig(probability=p) for p in (0.9, 0.95, 0.99)]
        for config in configs:
            predcache.get_predictor(trace, config)
        info = predcache.cache_info()
        assert info["size"] == 2
        # The oldest entry (0.9) was evicted: refetching it misses again.
        predcache.get_predictor(trace, configs[0])
        assert predcache.cache_info()["misses"] == 4

    def test_set_max_entries_validates(self):
        with pytest.raises(ValueError):
            predcache.set_max_entries(0)

    def test_clear_resets_counters(self, trace):
        predcache.get_predictor(trace, DraftsConfig(probability=0.95))
        predcache.clear()
        info = predcache.cache_info()
        assert info == {
            "hits": 0,
            "misses": 0,
            "batch_fits": 0,
            "size": 0,
            "max_entries": predcache.DEFAULT_MAX_ENTRIES,
        }
