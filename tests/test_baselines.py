"""Unit tests for the bidding-strategy baselines."""

import math

import numpy as np
import pytest

from repro.baselines import (
    AR1Bid,
    ConstantFactorBid,
    DraftsBid,
    EmpiricalCDFBid,
    OnDemandBid,
    TABLE1_STRATEGIES,
)
from repro.market.synthetic import generate_trace


@pytest.fixture(scope="module")
def combo_and_trace():
    from repro.market.universe import Universe, UniverseConfig

    uni = Universe(UniverseConfig(seed=5, n_epochs=30 * 288))
    combo = uni.combo("c4.large", "us-east-1b")
    return combo, uni.trace(combo)


class TestOnDemandBid:
    def test_constant_regional_price(self, combo_and_trace):
        combo, trace = combo_and_trace
        strategy = OnDemandBid.for_combo(combo, trace, 0.99)
        assert strategy.bid_at(100, 3600.0) == combo.ondemand_price
        assert strategy.bid_at(5000, 12 * 3600.0) == combo.ondemand_price

    def test_validation(self):
        with pytest.raises(ValueError):
            OnDemandBid(0.0)


class TestConstantFactorBid:
    def test_galaxies_factor(self, combo_and_trace):
        combo, trace = combo_and_trace
        strategy = ConstantFactorBid.for_combo(combo, trace, 0.99)
        assert strategy.bid_at(0, 1.0) == pytest.approx(
            round(0.8 * combo.ondemand_price, 4)
        )

    def test_custom_factor_factory(self, combo_and_trace):
        combo, trace = combo_and_trace
        cls = ConstantFactorBid.with_factor(1.5)
        strategy = cls.for_combo(combo, trace, 0.99)
        assert strategy.bid_at(0, 1.0) == pytest.approx(
            round(1.5 * combo.ondemand_price, 4)
        )
        assert "1.5" in cls.name


class TestEmpiricalCDFBid:
    def test_running_quantile_matches_numpy(self, rng):
        prices = rng.lognormal(-2, 0.4, size=400)
        trace_like = type("T", (), {"prices": prices})()
        strategy = EmpiricalCDFBid(trace_like, 0.9)
        for t in (50, 137, 399):
            prefix = np.sort(prices[:t])
            k = max(int(np.ceil(0.9 * t)) - 1, 0)
            assert strategy.bid_at(t, 1.0) == pytest.approx(prefix[k])

    def test_warmup_returns_nan(self, rng):
        prices = rng.lognormal(-2, 0.4, size=100)
        trace_like = type("T", (), {"prices": prices})()
        strategy = EmpiricalCDFBid(trace_like, 0.9)
        assert math.isnan(strategy.bid_at(10, 1.0))

    def test_no_lookahead(self, combo_and_trace, rng):
        combo, trace = combo_and_trace
        strategy = EmpiricalCDFBid.for_combo(combo, trace, 0.99)
        t = len(trace) // 2
        bid = strategy.bid_at(t, 1.0)
        # Recompute from the prefix only.
        prefix = np.sort(trace.prices[:t])
        k = max(int(np.ceil(0.99 * t)) - 1, 0)
        assert bid == pytest.approx(prefix[k])


class TestAR1Bid:
    def test_bid_above_recent_mean(self, combo_and_trace):
        combo, trace = combo_and_trace
        strategy = AR1Bid.for_combo(combo, trace, 0.99)
        t = len(trace) - 1
        bid = strategy.bid_at(t, 3600.0)
        assert bid > float(np.mean(trace.prices[t - 500 : t]))

    def test_higher_quantile_higher_bid(self):
        trace = generate_trace("diurnal", 0.42, n_epochs=4000, rng=3)
        lo = AR1Bid(trace, 0.90).bid_at(3999, 1.0)
        hi = AR1Bid(trace, 0.999).bid_at(3999, 1.0)
        assert hi > lo

    def test_nan_during_warmup(self, combo_and_trace):
        combo, trace = combo_and_trace
        strategy = AR1Bid.for_combo(combo, trace, 0.99)
        assert math.isnan(strategy.bid_at(3, 1.0))

    def test_gaussian_fit_on_ar1_data_covers(self, rng):
        """On genuinely AR(1) data, the 0.99 bid covers ~99% of values."""
        from repro.market.traces import PriceTrace

        phi, sigma, mu = 0.9, 0.01, 0.5
        n = 8000
        x = np.empty(n)
        x[0] = mu
        eps = rng.normal(0, sigma, n)
        for i in range(1, n):
            x[i] = mu + phi * (x[i - 1] - mu) + eps[i]
        trace = PriceTrace(np.arange(n) * 300.0, x.clip(min=0.01))
        strategy = AR1Bid(trace, 0.99)
        bid = strategy.bid_at(n - 1, 1.0)
        assert np.mean(x > bid) < 0.03


class TestDraftsBid:
    def test_fallback_top_of_ladder(self, spiky_trace):
        from repro.core.drafts import DraftsConfig, DraftsPredictor

        predictor = DraftsPredictor(spiky_trace, DraftsConfig(probability=0.99))
        top = DraftsBid(predictor, fallback="top")
        none = DraftsBid(predictor, fallback="none")
        t = len(spiky_trace) - 1
        huge = 60 * 3600.0  # beyond any certifiable duration
        assert math.isnan(none.bid_at(t, huge))
        fallback_bid = top.bid_at(t, huge)
        assert fallback_bid == pytest.approx(
            predictor.min_bid_at(t) * predictor.config.ladder_span
        )

    def test_matches_predictor_when_certifiable(self, spiky_predictor):
        strategy = DraftsBid(spiky_predictor)
        t = len(spiky_predictor.trace) - 1
        assert strategy.bid_at(t, 1800.0) == spiky_predictor.bid_for(1800.0, t)

    def test_invalid_fallback(self, spiky_predictor):
        with pytest.raises(ValueError):
            DraftsBid(spiky_predictor, fallback="up")


def test_table1_lineup_matches_paper_rows():
    names = [s.name for s in TABLE1_STRATEGIES]
    assert names == ["drafts", "ondemand", "ar1", "empirical-cdf"]
