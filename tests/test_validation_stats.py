"""Unit tests for the success-fraction statistical validation."""

import pytest

from repro.backtest.engine import BacktestConfig
from repro.backtest.validation import (
    assess_fraction,
    retest_combo,
    wilson_interval,
)
from repro.baselines import DraftsBid


class TestWilson:
    def test_contains_phat(self):
        low, high = wilson_interval(90, 100)
        assert low < 0.9 < high

    def test_narrows_with_n(self):
        l1, h1 = wilson_interval(90, 100)
        l2, h2 = wilson_interval(900, 1000)
        assert (h2 - l2) < (h1 - l1)

    def test_extremes_clamped(self):
        low, high = wilson_interval(0, 10)
        assert low == pytest.approx(0.0, abs=1e-12)
        low, high = wilson_interval(10, 10)
        assert high == pytest.approx(1.0, abs=1e-12)

    def test_validation(self):
        with pytest.raises(ValueError):
            wilson_interval(5, 0)
        with pytest.raises(ValueError):
            wilson_interval(11, 10)


class TestAssessment:
    def test_papers_case_is_consistent(self):
        """§4.1.1: 0.98 over 300 requests does not contradict p = 0.99."""
        assessment = assess_fraction(successes=294, n=300, target=0.99)
        assert assessment.fraction == pytest.approx(0.98)
        assert assessment.consistent_with_target(alpha=0.01)
        assert assessment.ci_low < 0.99 < assessment.ci_high + 0.02

    def test_gross_failure_rejected(self):
        assessment = assess_fraction(successes=250, n=300, target=0.99)
        assert not assessment.consistent_with_target()
        assert assessment.pvalue < 1e-6

    def test_perfect_run(self):
        assessment = assess_fraction(successes=300, n=300, target=0.99)
        assert assessment.pvalue == pytest.approx(1.0)
        assert assessment.consistent_with_target()

    def test_validation(self):
        with pytest.raises(ValueError):
            assess_fraction(5, 0, 0.99)
        with pytest.raises(ValueError):
            assess_fraction(5, 4, 0.99)
        with pytest.raises(ValueError):
            assess_fraction(5, 10, 1.0)


class TestRetest:
    def test_fresh_seeds_give_fresh_samples(self, small_universe):
        combo = small_universe.combo("c3.2xlarge", "us-west-1a")
        config = BacktestConfig(
            probability=0.95, n_requests=20,
            max_duration_hours=2, train_days=30, seed=3,
        )
        retests = retest_combo(
            small_universe, combo, DraftsBid, config, n_retests=2
        )
        assert len(retests) == 2
        # Different seeds: different request instants.
        t_a = [o.t_idx for o in retests[0].outcomes]
        t_b = [o.t_idx for o in retests[1].outcomes]
        assert t_a != t_b
        for result in retests:
            assert result.n == 20

    def test_validation(self, small_universe):
        combo = small_universe.combo("c3.2xlarge", "us-west-1a")
        config = BacktestConfig(
            probability=0.95, n_requests=5,
            max_duration_hours=2, train_days=30,
        )
        with pytest.raises(ValueError):
            retest_combo(small_universe, combo, DraftsBid, config, n_retests=0)
