"""Cross-module integration tests: the paper's end-to-end claims at
test scale."""

import math

import numpy as np
import pytest

from repro.backtest.engine import BacktestConfig, run_backtest
from repro.baselines import DraftsBid, OnDemandBid
from repro.cloud.api import EC2Api
from repro.cloud.spot import SpotTier, TerminationCause
from repro.market.obfuscation import AccountView, deobfuscate
from repro.service.client import DraftsClient
from repro.service.drafts_service import DraftsService, ServiceConfig
from repro.service.rest import RestRouter


class TestDurabilityGuarantee:
    """The headline claim: DrAFTS meets its durability target."""

    @pytest.mark.parametrize(
        "combo_key",
        [
            "c4.large@us-east-1b",  # calm
            "c3.2xlarge@us-west-1a",  # spiky
            "cg1.4xlarge@us-east-1b",  # premium
            "c4.4xlarge@us-east-1e",  # volatile
        ],
    )
    def test_drafts_meets_95_target(self, small_universe, combo_key):
        itype, zone = combo_key.split("@")
        combo = small_universe.combo(itype, zone)
        cfg = BacktestConfig(
            probability=0.95, n_requests=60,
            max_duration_hours=4, train_days=30, seed=2,
        )
        result = run_backtest(small_universe, combo, DraftsBid, cfg)
        # One failure of tolerance for sampling noise at n=60.
        assert result.success_fraction >= 0.95 - 1.5 / 60

    def test_drafts_beats_ondemand_on_premium(self, small_universe):
        """§4.1.2: the On-demand bid never survives on premium pools while
        DrAFTS always does."""
        combo = small_universe.combo("cg1.4xlarge", "us-east-1b")
        cfg = BacktestConfig(
            probability=0.95, n_requests=40,
            max_duration_hours=3, train_days=30, seed=2,
        )
        drafts = run_backtest(small_universe, combo, DraftsBid, cfg)
        ondemand = run_backtest(small_universe, combo, OnDemandBid, cfg)
        assert ondemand.success_fraction == 0.0
        assert drafts.success_fraction >= 0.95


class TestServiceDrivenLaunch:
    """Client -> REST -> service -> predictor -> Spot tier, end to end."""

    def test_service_bid_survives_requested_duration(self, small_universe):
        api = EC2Api(small_universe)
        client = DraftsClient(
            RestRouter(DraftsService(api, ServiceConfig(probabilities=(0.95,))))
        )
        combo = small_universe.combo("c4.large", "us-east-1b")
        trace = small_universe.trace(combo)
        now = trace.start + 45 * 86400.0
        duration = 3300.0  # the paper's launch-experiment duration
        failures = 0
        launches = 0
        t = now
        while t < trace.end - 2 * 3600.0 and launches < 40:
            bid = client.bid_for("c4.large", "us-east-1b", 0.95, duration, t)
            if not math.isnan(bid):
                run = api.request_spot_instance(
                    "c4.large", "us-east-1b", t, duration, bid
                )
                launches += 1
                failures += run.cause is not TerminationCause.USER
            t += 4 * 3600.0
        assert launches >= 30
        assert failures / launches <= 0.05


class TestObfuscatedServiceAccount:
    """The deobfuscation workflow the production service needs (§2.2)."""

    def test_client_recovers_service_zone_names(self, small_universe):
        view = AccountView("us-west-2", {"a": "b", "b": "c", "c": "a"})
        client_api = EC2Api(small_universe, {"us-west-2": view})
        service_api = EC2Api(small_universe)
        itype = "c4.large"
        now = small_universe.trace(
            small_universe.combo(itype, "us-west-2a")
        ).start + 30 * 86400.0
        local = {
            z: client_api.describe_spot_price_history(itype, z, now)
            for z in client_api.describe_availability_zones("us-west-2")
        }
        remote = {
            z: service_api.describe_spot_price_history(itype, z, now)
            for z in service_api.describe_availability_zones("us-west-2")
        }
        mapping = deobfuscate(local, remote)
        for local_name, service_name in mapping.items():
            assert view.to_physical(local_name) == service_name


class TestRiskReduction:
    def test_bid_bounds_worst_case_cost(self, small_universe):
        """A DrAFTS bid bounds the realised cost from above."""
        combo = small_universe.combo("c3.2xlarge", "us-west-1a")
        trace = small_universe.trace(combo)
        strategy = DraftsBid.for_combo(combo, trace, 0.95)
        tier = SpotTier(trace)
        rng = np.random.default_rng(4)
        for _ in range(25):
            t_idx = int(rng.integers(30 * 288, len(trace) - 1000))
            duration = float(rng.uniform(600, 3 * 3600))
            bid = strategy.bid_at(t_idx, duration)
            if math.isnan(bid):
                continue
            run = tier.run(float(trace.times[t_idx]), duration, bid)
            if run.cause is TerminationCause.REJECTED:
                continue
            assert run.charge.cost <= run.risk + 1e-9
