"""Unit tests for the REST layer and the client wrapper."""

import math

import pytest

from repro.cloud.api import EC2Api
from repro.service.client import DraftsClient
from repro.service.drafts_service import DraftsService
from repro.service.rest import RestRouter


@pytest.fixture(scope="module")
def env(request):
    small_universe = request.getfixturevalue("small_universe")
    api = EC2Api(small_universe)
    router = RestRouter(DraftsService(api))
    client = DraftsClient(router)
    combo = small_universe.combo("c4.large", "us-east-1b")
    now = small_universe.trace(combo).start + 45 * 86400.0
    return router, client, now


class TestRouter:
    def test_health(self, env):
        router, _, _ = env
        response = router.get("/health")
        assert response.ok
        assert response.body == {"status": "ok"}

    def test_predictions_route(self, env):
        router, _, now = env
        response = router.get(
            f"/predictions/c4.large/us-east-1b?probability=0.95&now={now}"
        )
        assert response.status == 200
        assert response.body["instance_type"] == "c4.large"
        assert len(response.body["bids"]) == len(response.body["durations"])

    def test_missing_parameter_is_400(self, env):
        router, _, _ = env
        response = router.get("/predictions/c4.large/us-east-1b?now=1")
        assert response.status == 400
        assert "probability" in response.body["error"]

    def test_unknown_combo_is_404(self, env):
        router, _, now = env
        response = router.get(
            f"/predictions/cg1.4xlarge/us-west-2a?probability=0.95&now={now}"
        )
        assert response.status == 404

    def test_unknown_route_is_404(self, env):
        router, _, _ = env
        assert router.get("/nope").status == 404
        assert router.get("/predictions/only-two").status == 404

    def test_insufficient_history_is_503(self, env, small_universe):
        router, _, _ = env
        combo = small_universe.combo("c4.large", "us-east-1b")
        early = small_universe.trace(combo).start + 3600.0
        response = router.get(
            f"/predictions/c4.large/us-east-1b?probability=0.95&now={early}"
        )
        assert response.status == 503

    def test_bid_route_404_when_unachievable(self, env):
        router, _, now = env
        response = router.get(
            "/bid/c4.large/us-east-1b"
            f"?probability=0.95&duration={500 * 3600}&now={now}"
        )
        assert response.status == 404
        assert "On-demand" in response.body["error"]

    def test_cheapest_route(self, env):
        router, _, now = env
        response = router.get(
            f"/cheapest/c4.large/us-east-1?probability=0.95&now={now}"
        )
        assert response.ok
        assert response.body["zone"].startswith("us-east-1")


class TestErrorPaths:
    def test_unknown_routes_are_404(self, env):
        router, _, _ = env
        for url in ("/", "/frobnicate", "/predictions", "/bid/a/b/c/d"):
            assert router.get(url).status == 404

    def test_missing_params_name_the_parameter(self, env):
        router, _, now = env
        response = router.get("/bid/c4.large/us-east-1b?now=1")
        assert response.status == 400
        assert "probability" in response.body["error"]
        response = router.get(
            f"/bid/c4.large/us-east-1b?probability=0.95&now={now}"
        )
        assert response.status == 400
        assert "duration" in response.body["error"]

    def test_malformed_float_names_the_parameter(self, env):
        router, _, _ = env
        response = router.get(
            "/predictions/c4.large/us-east-1b?probability=abc&now=1"
        )
        assert response.status == 400
        assert "probability" in response.body["error"]
        assert "abc" in response.body["error"]
        response = router.get(
            "/bid/c4.large/us-east-1b?probability=0.95&duration=soon&now=1"
        )
        assert response.status == 400
        assert "duration" in response.body["error"]

    def test_unpublished_probability_is_400(self, env):
        router, _, now = env
        response = router.get(
            f"/predictions/c4.large/us-east-1b?probability=0.5&now={now}"
        )
        assert response.status == 400
        assert "0.5" in response.body["error"]

    def test_cheapest_short_history_is_503(self, env, small_universe):
        """Data readiness is a service-side condition (503), not a client
        error: no AZ can quote this early in the trace."""
        router, _, _ = env
        combo = small_universe.combo("c4.large", "us-east-1b")
        early = small_universe.trace(combo).start + 3600.0
        response = router.get(
            f"/cheapest/c4.large/us-east-1?probability=0.95&now={early}"
        )
        assert response.status == 503
        assert "us-east-1" in response.body["error"]


class TestClient:
    def test_health(self, env):
        _, client, _ = env
        assert client.health()

    def test_fetch_curve_roundtrip(self, env):
        _, client, now = env
        curve = client.fetch_curve("c4.large", "us-east-1b", 0.95, now)
        assert curve is not None
        assert curve.zone == "us-east-1b"
        assert curve.minimum_bid > 0

    def test_fetch_curve_none_when_unpredictable(self, env, small_universe):
        _, client, _ = env
        combo = small_universe.combo("c4.large", "us-east-1b")
        early = small_universe.trace(combo).start + 3600.0
        assert client.fetch_curve("c4.large", "us-east-1b", 0.95, early) is None

    def test_bid_for(self, env):
        _, client, now = env
        bid = client.bid_for("c4.large", "us-east-1b", 0.95, 1800.0, now)
        assert bid > 0
        assert math.isnan(
            client.bid_for("c4.large", "us-east-1b", 0.95, 500 * 3600.0, now)
        )

    def test_client_raises_on_bad_request(self, env):
        _, client, now = env
        with pytest.raises(RuntimeError):
            client.fetch_curve("z9.mega", "us-east-1b", 0.95, now)

    def test_cheapest_zone(self, env):
        _, client, now = env
        choice = client.cheapest_zone("c4.large", "us-east-1", 0.95, now)
        assert choice is not None
        zone, bid = choice
        assert zone.startswith("us-east-1")
        assert bid > 0
