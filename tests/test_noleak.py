"""No-look-ahead contract tests.

Every backtest in the paper is only valid if a prediction at instant t
uses nothing after t. These tests corrupt the *future* of a trace and
assert that every strategy's bids before the corruption point are
bit-identical — the strongest possible statement that no future data leaks
into a prediction.
"""

import numpy as np
import pytest

from repro.baselines import AR1Bid, DraftsBid, EmpiricalCDFBid, OnDemandBid
from repro.core.drafts import DraftsConfig, DraftsPredictor
from repro.market.synthetic import generate_trace
from repro.market.traces import PriceTrace
from repro.market.universe import Universe, UniverseConfig

EPD = 288
CUT = 20 * EPD  # corruption point: day 20 of 30


@pytest.fixture(scope="module")
def trace_pair():
    original = generate_trace("spiky", 0.42, n_epochs=30 * EPD, rng=6)
    prices = original.prices.copy()
    prices[CUT:] = np.round(prices[CUT:] * 37.0 + 1.0, 4)  # absurd future
    corrupted = PriceTrace(original.times, prices, "x", "y")
    return original, corrupted


@pytest.fixture(scope="module")
def combo():
    uni = Universe(UniverseConfig(seed=5, n_epochs=30 * EPD))
    return uni.combo("c3.2xlarge", "us-west-1a")


QUERY_POINTS = tuple(range(8 * EPD, CUT, 397))
DURATIONS = (1800.0, 2 * 3600.0, 6 * 3600.0)


def _bids(strategy):
    return [
        strategy.bid_at(t, d) for t in QUERY_POINTS for d in DURATIONS
    ]


class TestNoLookAhead:
    @pytest.mark.parametrize(
        "strategy_cls", [DraftsBid, OnDemandBid, AR1Bid, EmpiricalCDFBid]
    )
    def test_strategy_bids_ignore_future(
        self, strategy_cls, trace_pair, combo
    ):
        original, corrupted = trace_pair
        a = _bids(strategy_cls.for_combo(combo, original, 0.95))
        b = _bids(strategy_cls.for_combo(combo, corrupted, 0.95))
        np.testing.assert_array_equal(np.asarray(a), np.asarray(b))

    def test_drafts_curves_ignore_future(self, trace_pair):
        original, corrupted = trace_pair
        cfg = DraftsConfig(probability=0.95, max_price=1000.0)
        pa = DraftsPredictor(original, cfg)
        pb = DraftsPredictor(corrupted, cfg)
        for t in QUERY_POINTS[::3]:
            ca = pa.curve_at(t)
            cb = pb.curve_at(t)
            if ca is None or cb is None:
                assert ca is None and cb is None
                continue
            assert ca.bids == cb.bids
            np.testing.assert_array_equal(
                np.asarray(ca.durations), np.asarray(cb.durations)
            )

    def test_drafts_duration_bounds_ignore_future(self, trace_pair):
        original, corrupted = trace_pair
        cfg = DraftsConfig(probability=0.95, max_price=1000.0)
        pa = DraftsPredictor(original, cfg)
        pb = DraftsPredictor(corrupted, cfg)
        for t in QUERY_POINTS[::2]:
            bid = pa.min_bid_at(t)
            if np.isnan(bid):
                continue
            da = pa.duration_bound(bid, t)
            db = pb.duration_bound(bid, t)
            np.testing.assert_equal(da, db)
