"""Tests for the experiment drivers (all at the 'test' scale preset)."""

import math

import pytest

from repro.experiments import (
    EXPERIMENTS,
    SCALES,
    run_experiment,
    run_figure2,
    run_figure4,
    run_table2,
    run_tightness,
)
from repro.experiments.common import scaled_combos, scaled_universe


class TestScalePresets:
    def test_presets_exist(self):
        assert set(SCALES) == {"paper", "bench", "test"}
        assert SCALES["paper"].n_requests == 300
        assert SCALES["paper"].max_duration_hours == 12.0
        assert SCALES["paper"].replay_seeds == 35
        assert SCALES["paper"].replay_jobs == 1000

    def test_paper_scale_covers_full_universe(self):
        assert SCALES["paper"].per_class == 0
        # Building the universe is cheap (traces are lazy).
        assert len(scaled_universe("paper").combos()) == 452

    def test_test_scale_is_stratified(self):
        combos = scaled_combos("test")
        classes = {c.volatility_class for c in combos}
        assert len(classes) == 6
        assert len(combos) == 6


class TestRegistry:
    def test_all_paper_artifacts_registered(self):
        assert set(EXPERIMENTS) == {
            "table1",
            "figure1",
            "figure2",
            "figure3",
            "figure4",
            "table2",
            "table3",
            "table4",
            "table5",
            "tightness",
        }

    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            run_experiment("table99")


class TestDrivers:
    def test_figure2_runs_and_renders(self):
        result = run_figure2(scale="test")
        assert result.series.records
        text = result.render()
        assert "Figure 2" in text
        assert "c4.large" in text

    def test_figure4_curve_monotone(self):
        result = run_figure4(scale="test")
        finite = [d for d in result.curve.durations if not math.isnan(d)]
        assert finite == sorted(finite)
        assert "bid-duration" in result.render()

    def test_table2_shape(self):
        result = run_table2(scale="test")
        # The headline: DrAFTS cuts the worst-case (risked) cost.
        assert result.drafts.max_bid_cost < result.original.max_bid_cost
        assert "Table 2" in result.render()

    def test_tightness_in_paper_band(self):
        result = run_tightness(scale="test")
        # Tech report: per-combination averages between 4.8x and 7.5x;
        # our per-class spread straddles that band and the overall mean
        # lands in the same regime.
        assert 1.5 < result.mean_ratio < 15.0
        assert result.by_class()
        assert "Tightness" in result.render()


class TestCli:
    def test_main_runs_an_experiment(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["figure4", "--scale", "test"]) == 0
        out = capsys.readouterr().out
        assert "Figure 4" in out
        assert "completed in" in out

    def test_main_rejects_unknown(self):
        from repro.experiments.__main__ import main

        with pytest.raises(SystemExit):
            main(["tableX"])


class TestParallelBacktest:
    def test_parallel_matches_sequential(self):
        from repro.experiments.parallel import backtest_matrix

        seq = backtest_matrix(scale="test", probability=0.95, workers=0)
        par = backtest_matrix(scale="test", probability=0.95, workers=2)
        assert len(seq) == len(par) == 6 * 4
        for a, b in zip(seq, par):
            assert a.combo_key == b.combo_key
            assert a.strategy == b.strategy
            assert a.success_fraction == b.success_fraction
            assert a.outcomes == b.outcomes

    def test_table1_workers_path(self):
        from repro.experiments.table1 import run_table1

        result = run_table1(scale="test", probability=0.95, workers=2)
        assert len(result.results) == 24
        assert result.table.rows

    def test_unknown_scale_rejected(self):
        from repro.experiments.parallel import backtest_matrix

        with pytest.raises(KeyError):
            backtest_matrix(scale="galactic")


class TestCostOptDrivers:
    def test_table4_shape_at_test_scale(self):
        from repro.experiments.tables45 import run_table4

        result = run_table4(scale="test")
        table = result.table
        assert table.probability == 0.99
        assert len(table.rows) == 9  # two combos sampled per AZ
        for row in table.rows:
            assert row.savings >= -0.02
            assert row.spot_requests + row.ondemand_requests > 0
        assert "Table 4" in result.render()

    def test_table5_saves_at_least_table4(self):
        from repro.experiments.tables45 import run_table4, run_table5

        t4 = run_table4(scale="test").table
        t5 = run_table5(scale="test").table
        assert t5.total_savings >= t4.total_savings - 0.02


class TestFigureDrivers:
    def test_figure1_collects_sub_target_spread(self):
        from repro.experiments.figure1 import run_figure1

        result = run_figure1(scale="test", probability=0.99)
        # The premium combination guarantees at least one total failure.
        assert result.has_zero_fraction
        assert result.n_combos == 6
        assert "Figure 1" in result.render()

    def test_figure3_runs_and_reports_runs(self):
        from repro.experiments.figures23 import run_figure3

        result = run_figure3(scale="test")
        series = result.series
        assert len(series.records) > 0
        assert 0.0 <= series.success_fraction <= 1.0
        # failure_runs is always consistent with the failure count.
        assert sum(length for _, length in series.failure_runs()) == (
            series.failures
        )
