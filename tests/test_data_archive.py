"""Unit tests for the price-history archive tooling."""

import json

import numpy as np
import pytest

from repro.data import export_universe, load_archive
from repro.market.universe import Universe, UniverseConfig


@pytest.fixture(scope="module")
def tiny_universe():
    return Universe(UniverseConfig(seed=9, n_epochs=400))


class TestExportLoad:
    def test_roundtrip(self, tiny_universe, tmp_path):
        combos = tiny_universe.subsample(per_class=1)
        manifest = export_universe(tiny_universe, tmp_path / "arc", combos)
        assert len(manifest.entries) == len(combos)

        loaded_manifest, traces = load_archive(tmp_path / "arc")
        assert loaded_manifest == manifest
        for combo in combos:
            original = tiny_universe.trace(combo)
            restored = traces[combo.key]
            np.testing.assert_array_equal(restored.prices, original.prices)
            np.testing.assert_array_equal(restored.times, original.times)
            assert restored.instance_type == combo.instance_type
            assert restored.zone == combo.zone.name

    def test_manifest_records_metadata(self, tiny_universe, tmp_path):
        combos = tiny_universe.subsample(per_class=1)
        manifest = export_universe(tiny_universe, tmp_path / "arc2", combos)
        assert manifest.universe_seed == 9
        assert manifest.n_epochs == 400
        entry = manifest.entry(combos[0].key)
        assert entry.volatility_class == combos[0].volatility_class
        assert entry.ondemand_price == combos[0].ondemand_price
        with pytest.raises(KeyError):
            manifest.entry("nope@nowhere")

    def test_never_clobbers(self, tiny_universe, tmp_path):
        combos = tiny_universe.subsample(per_class=1)[:1]
        export_universe(tiny_universe, tmp_path / "arc3", combos)
        with pytest.raises(FileExistsError):
            export_universe(tiny_universe, tmp_path / "arc3", combos)

    def test_missing_archive(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_archive(tmp_path / "nothing-here")

    def test_version_check(self, tiny_universe, tmp_path):
        combos = tiny_universe.subsample(per_class=1)[:1]
        export_universe(tiny_universe, tmp_path / "arc4", combos)
        manifest_path = tmp_path / "arc4" / "manifest.json"
        data = json.loads(manifest_path.read_text())
        data["format_version"] = 999
        manifest_path.write_text(json.dumps(data))
        with pytest.raises(ValueError):
            load_archive(tmp_path / "arc4")

    def test_corruption_detected(self, tiny_universe, tmp_path):
        combos = tiny_universe.subsample(per_class=1)[:1]
        manifest = export_universe(tiny_universe, tmp_path / "arc5", combos)
        trace_file = (
            tmp_path / "arc5" / "traces" / manifest.entries[0].filename
        )
        lines = trace_file.read_text().splitlines()
        trace_file.write_text("\n".join(lines[:-5]) + "\n")  # drop rows
        with pytest.raises(ValueError):
            load_archive(tmp_path / "arc5")

    def test_loaded_traces_drive_drafts(self, tiny_universe, tmp_path):
        """An archive is a full substitute for the generator."""
        from repro.core.drafts import DraftsConfig, DraftsPredictor

        combos = [
            c
            for c in tiny_universe.subsample(per_class=1)
            if c.volatility_class == "calm"
        ]
        export_universe(tiny_universe, tmp_path / "arc6", tuple(combos))
        _, traces = load_archive(tmp_path / "arc6")
        trace = traces[combos[0].key]
        predictor = DraftsPredictor(trace, DraftsConfig(probability=0.95))
        # 400 epochs exceed the p=0.95 minimum history: a bound exists.
        assert predictor.min_bid_at(len(trace) - 1) > 0
