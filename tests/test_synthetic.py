"""Stylised-fact tests for the synthetic trace generators.

These tests *are* the calibration contract of DESIGN.md §1: each volatility
class must exhibit the behaviour the corresponding paper observation
requires.
"""

import numpy as np
import pytest

from repro.market.synthetic import (
    VOLATILITY_CLASSES,
    generate_trace,
    synthetic_trace,
)
from repro.util.timeutils import EPOCH_SECONDS

OD = 0.42
EPD = 288


def _trace(cls, seed=0, days=90):
    return generate_trace(cls, OD, n_epochs=days * EPD, rng=seed)


class TestGeneratorBasics:
    def test_unknown_class_rejected(self):
        with pytest.raises(KeyError):
            generate_trace("wild", OD)

    def test_validation(self):
        with pytest.raises(ValueError):
            generate_trace("calm", 0.0)
        with pytest.raises(ValueError):
            generate_trace("calm", OD, n_epochs=1)

    def test_epoch_grid_and_quantisation(self):
        trace = _trace("calm", days=2)
        np.testing.assert_allclose(np.diff(trace.times), EPOCH_SECONDS)
        np.testing.assert_allclose(trace.prices, np.round(trace.prices, 4))
        assert np.all(trace.prices >= 1e-4)

    def test_deterministic_by_seed(self):
        a = _trace("volatile", seed=3, days=5)
        b = _trace("volatile", seed=3, days=5)
        np.testing.assert_array_equal(a.prices, b.prices)
        c = _trace("volatile", seed=4, days=5)
        assert not np.array_equal(a.prices, c.prices)

    def test_convenience_wrapper(self):
        t = synthetic_trace("calm", seed=1, n_epochs=600, ondemand_price=0.1)
        assert len(t) == 600

    def test_every_class_generates(self):
        for cls in VOLATILITY_CLASSES:
            assert len(_trace(cls, days=3)) == 3 * EPD


class TestCalmFacts:
    def test_mostly_pinned_at_floor(self):
        trace = _trace("calm")
        floor = trace.prices.min()
        assert np.mean(trace.prices <= floor * 1.02) > 0.3

    def test_always_below_ondemand(self):
        for seed in range(4):
            assert _trace("calm", seed=seed).prices.max() < OD

    def test_plateaus_present_in_training_window(self):
        """90 days must contain elevated plateaus (DrAFTS needs extremes)."""
        trace = _trace("calm")
        floor = trace.prices.min()
        assert trace.prices.max() > floor * 1.3


class TestSpikyFacts:
    def test_plateaus_exceed_ondemand_rarely(self):
        """~1 % of epochs above On-demand: between the p=0.95 and p=0.99
        price quantiles (DESIGN.md §1 calibration)."""
        fracs = [
            np.mean(_trace("spiky", seed=s).prices > OD) for s in range(4)
        ]
        mean_frac = float(np.mean(fracs))
        assert 0.002 < mean_frac < 0.04

    def test_plateaus_are_long_lived(self):
        """Episodes must last hours, not minutes (Table 1 arithmetic)."""
        trace = _trace("spiky", seed=1)
        above = trace.prices > OD
        runs = []
        count = 0
        for flag in above:
            if flag:
                count += 1
            elif count:
                runs.append(count)
                count = 0
        if count:
            runs.append(count)
        assert runs, "no plateau in 90 days is miscalibrated"
        assert np.mean(runs) >= 12  # at least an hour on average

    def test_plateaus_within_bid_ladder_reach(self):
        """Spike tops stay within ~4x of the base price level."""
        trace = _trace("spiky", seed=2)
        base = np.median(trace.prices)
        assert trace.prices.max() < 8 * base


class TestVolatileFacts:
    def test_orders_of_magnitude_range(self):
        """§4.4: c4.4xlarge/us-east-1e varied $0.13-$9.5 (~70x)."""
        trace = _trace("volatile", seed=0)
        assert trace.prices.max() / trace.prices.min() > 20

    def test_capped_at_ten_x_ondemand(self):
        for seed in range(4):
            assert _trace("volatile", seed=seed).prices.max() <= 10 * OD + 1e-6


class TestPremiumFacts:
    def test_never_below_ondemand(self):
        """§4.1.2: the Spot price was always >= one tick above On-demand."""
        for seed in range(4):
            trace = _trace("premium", seed=seed)
            assert trace.prices.min() >= OD + 1e-5

    def test_narrow_band(self):
        trace = _trace("premium")
        assert trace.prices.max() < OD * 1.2


class TestRegimeFacts:
    def test_level_shifts_present(self):
        trace = _trace("regime", seed=1, days=90)
        # Compare 10-day block medians: they must differ materially.
        blocks = trace.prices[: 9 * 10 * EPD].reshape(9, -1)
        medians = np.median(blocks, axis=1)
        assert medians.max() / medians.min() > 1.3


class TestDiurnalFacts:
    def test_daily_cycle(self):
        trace = _trace("diurnal", seed=0, days=30)
        by_tod = trace.prices[: 30 * EPD].reshape(30, EPD).mean(axis=0)
        # Peak-to-trough swing of roughly the configured amplitude.
        assert by_tod.max() / by_tod.min() > 1.2
