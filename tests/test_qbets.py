"""Unit tests for the online QBETS forecaster."""

import numpy as np
import pytest

from repro.core import binomial
from repro.core.qbets import QBETS, QBETSConfig


def _iid_series(rng, n=1500):
    return rng.lognormal(mean=-2.0, sigma=0.3, size=n)


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            QBETSConfig(q=1.5)
        with pytest.raises(ValueError):
            QBETSConfig(q=0.9, side="middle")
        with pytest.raises(ValueError):
            QBETSConfig(q=0.9, cp_decimation=0)

    def test_min_history_matches_binomial(self):
        cfg = QBETSConfig(q=0.975, c=0.99)
        assert cfg.min_history() == binomial.min_history_upper(0.975, 0.99)
        low = QBETSConfig(q=0.025, c=0.99, side="lower")
        assert low.min_history() == binomial.min_history_lower(0.025, 0.99)

    def test_with_override(self):
        cfg = QBETSConfig(q=0.9).with_(changepoint=False)
        assert cfg.changepoint is False
        assert cfg.q == 0.9


class TestOnlineBound:
    def test_nan_before_min_history(self, rng):
        qb = QBETS(QBETSConfig(q=0.975, c=0.99))
        x = _iid_series(rng, qb.config.min_history() - 1)
        for v in x:
            qb.update(float(v))
        assert np.isnan(qb.bound)
        qb.update(float(x[0]))
        assert not np.isnan(qb.bound)

    def test_bound_above_bulk(self, rng):
        qb = QBETS(QBETSConfig(q=0.975, c=0.99))
        x = _iid_series(rng)
        for v in x:
            qb.update(float(v))
        assert qb.bound >= np.quantile(x[-qb.n :], 0.9)

    def test_bound_is_observed_tick_value(self, rng):
        cfg = QBETSConfig(q=0.975, c=0.99, tick=1e-4)
        qb = QBETS(cfg)
        x = np.round(_iid_series(rng), 4)
        for v in x:
            qb.update(float(v))
        # Upper-rounding to the tick grid: the bound equals some quantised
        # observation.
        assert qb.bound in np.round(x, 4)

    def test_coverage_on_iid_series(self, rng):
        """Empirical next-step exceedance rate is at most ~1 - q."""
        cfg = QBETSConfig(q=0.95, c=0.99)
        qb = QBETS(cfg)
        x = _iid_series(rng, 6000)
        bounds = qb.bound_series(x)
        valid = ~np.isnan(bounds)
        exceed = np.mean(x[valid] > bounds[valid])
        assert exceed <= 0.05 + 0.01

    def test_bound_series_is_predictive(self, rng):
        """bound_series[i] must not depend on values from index i onward."""
        x = _iid_series(rng, 800)
        qb1 = QBETS(QBETSConfig(q=0.9, c=0.95))
        full = qb1.bound_series(x)
        cut = 600
        y = x.copy()
        y[cut:] = y[cut:] * 100.0  # corrupt the future
        qb2 = QBETS(QBETSConfig(q=0.9, c=0.95))
        corrupted = qb2.bound_series(y)
        np.testing.assert_array_equal(full[: cut + 1], corrupted[: cut + 1])

    def test_k_table_matches_direct_computation(self, rng):
        cfg = QBETSConfig(q=0.95, c=0.99, autocorr=False, changepoint=False)
        qb = QBETS(cfg)
        x = _iid_series(rng, 700)
        for v in x:
            qb.update(float(v))
        k = binomial.upper_bound_index(qb.n, 0.95, 0.99)
        expected = np.sort(np.ceil(x / cfg.tick - 1e-9) * cfg.tick)[::-1][k]
        assert qb.bound == pytest.approx(expected)

    def test_n_seen_tracks_everything(self, rng):
        qb = QBETS(QBETSConfig(q=0.9))
        x = _iid_series(rng, 300)
        for v in x:
            qb.update(float(v))
        assert qb.n_seen == 300
        assert qb.n <= 300


class TestChangePoints:
    def test_upward_shift_truncates_and_adapts(self, rng):
        cfg = QBETSConfig(q=0.95, c=0.95, cp_window=24, cp_decimation=4)
        qb = QBETS(cfg)
        low = rng.normal(1.0, 0.01, size=1200).clip(min=0.01)
        high = rng.normal(5.0, 0.01, size=1200).clip(min=0.01)
        qb.bound_series(low)
        assert qb.bound < 2.0
        qb.bound_series(high)
        assert qb.changepoints, "upward shift not detected"
        assert qb.n < 2400
        assert qb.bound > 4.0

    def test_downward_shift_detected(self, rng):
        cfg = QBETSConfig(q=0.95, c=0.95, cp_window=24, cp_decimation=4)
        qb = QBETS(cfg)
        high = rng.normal(5.0, 0.05, size=1200).clip(min=0.01)
        low = rng.normal(1.0, 0.05, size=1200).clip(min=0.01)
        qb.bound_series(high)
        qb.bound_series(low)
        assert qb.changepoints, "downward shift not detected"
        # After adaptation the bound must track the new low regime.
        assert qb.bound < 2.0

    def test_ablation_switch_disables_detection(self, rng):
        cfg = QBETSConfig(q=0.95, c=0.95, changepoint=False)
        qb = QBETS(cfg)
        qb.bound_series(rng.normal(5.0, 0.05, 900).clip(min=0.01))
        qb.bound_series(rng.normal(1.0, 0.05, 900).clip(min=0.01))
        assert qb.changepoints == []
        # Without truncation the stale history keeps the bound high.
        assert qb.bound > 4.0

    def test_truncation_preserves_min_history(self, rng):
        cfg = QBETSConfig(q=0.975, c=0.99, cp_window=4, cp_decimation=2)
        qb = QBETS(cfg)
        qb.bound_series(rng.normal(1.0, 0.01, 800).clip(min=0.01))
        qb.bound_series(rng.normal(6.0, 0.01, 800).clip(min=0.01))
        if qb.changepoints:
            assert qb.n >= min(cfg.min_history(), 800)


class TestAutocorrCompensation:
    def test_correction_never_silences(self, rng):
        """With enough raw history a bound must exist despite high rho."""
        cfg = QBETSConfig(q=0.975, c=0.99, changepoint=False)
        qb = QBETS(cfg)
        # A slow sticky sine: exceedances are massively autocorrelated.
        t = np.arange(3000)
        x = 1.0 + 0.2 * np.sin(t / 150.0) + rng.normal(0, 0.003, 3000)
        qb.bound_series(x.clip(min=0.01))
        assert not np.isnan(qb.bound)

    def test_correction_is_conservative(self, rng):
        """The corrected bound is at least the uncorrected one."""
        x = np.repeat(rng.lognormal(-2, 0.4, 400), 8)  # sticky blocks
        on = QBETS(QBETSConfig(q=0.95, c=0.95, changepoint=False))
        off = QBETS(
            QBETSConfig(q=0.95, c=0.95, changepoint=False, autocorr=False)
        )
        on.bound_series(x)
        off.bound_series(x)
        assert on.bound >= off.bound
