"""Hypothesis property tests on QBETS itself."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.qbets import QBETS, QBETSConfig


@given(
    q=st.floats(min_value=0.6, max_value=0.98),
    c=st.floats(min_value=0.6, max_value=0.98),
    seed=st.integers(min_value=0, max_value=2**31),
)
@settings(max_examples=25, deadline=None)
def test_iid_coverage_across_parameters(q, c, seed):
    """Next-step exceedance stays within ~(1 - q) for any (q, c)."""
    rng = np.random.default_rng(seed)
    x = rng.lognormal(-2.0, 0.4, size=2500)
    qb = QBETS(QBETSConfig(q=q, c=c, changepoint=False, autocorr=False))
    bounds = qb.bound_series(x)
    valid = ~np.isnan(bounds)
    if valid.sum() < 200:
        return  # history requirement dominates; nothing to measure
    exceed = float(np.mean(x[valid] > bounds[valid]))
    # Allow binomial sampling slack around 1 - q.
    n = int(valid.sum())
    slack = 3.0 * np.sqrt((1 - q) * q / n)
    assert exceed <= (1 - q) + slack + 0.01


@given(
    seed=st.integers(min_value=0, max_value=2**31),
    scale=st.floats(min_value=0.01, max_value=50.0),
)
@settings(max_examples=25, deadline=None)
def test_bound_scales_with_the_series(seed, scale):
    """Scaling prices scales the bound (no hidden absolute thresholds
    besides tick quantisation)."""
    rng = np.random.default_rng(seed)
    x = rng.lognormal(-1.0, 0.3, size=800)
    a = QBETS(QBETSConfig(q=0.9, c=0.9, changepoint=False, autocorr=False,
                          max_value=10_000.0))
    b = QBETS(QBETSConfig(q=0.9, c=0.9, changepoint=False, autocorr=False,
                          max_value=10_000.0))
    a.bound_series(x)
    b.bound_series(x * scale)
    if np.isnan(a.bound):
        assert np.isnan(b.bound)
        return
    # Tick quantisation (1e-4, rounded up) bounds the relative error.
    assert b.bound == pytest.approx(a.bound * scale, abs=2e-4 * max(scale, 1))


@given(seed=st.integers(min_value=0, max_value=2**31))
@settings(max_examples=20, deadline=None)
def test_bound_is_monotone_in_q(seed):
    rng = np.random.default_rng(seed)
    x = rng.lognormal(-2.0, 0.5, size=1200)
    bounds = []
    for q in (0.7, 0.85, 0.95):
        qb = QBETS(QBETSConfig(q=q, c=0.9, changepoint=False, autocorr=False))
        qb.bound_series(x)
        bounds.append(qb.bound)
    finite = [b for b in bounds if not np.isnan(b)]
    assert finite == sorted(finite)


@given(seed=st.integers(min_value=0, max_value=2**31))
@settings(max_examples=20, deadline=None)
def test_update_returns_current_bound(seed):
    rng = np.random.default_rng(seed)
    x = rng.lognormal(-2.0, 0.3, size=400)
    qb = QBETS(QBETSConfig(q=0.8, c=0.8))
    for v in x:
        returned = qb.update(float(v))
        assert (np.isnan(returned) and np.isnan(qb.bound)) or (
            returned == qb.bound
        )
