"""Replayer tests: open-loop scheduling and hedge accounting against an
injected clock and a fake transport, EWMA quarantine, and the end-to-end
seeded-spike demonstration that hedging cuts p99.9."""

from __future__ import annotations

import threading
import time

import pytest

from repro.serving.chaos import FaultConfig, ReplaySpiker
from repro.serving.clock import ManualClock
from repro.serving.replay import (
    HEDGE_HEADER,
    EwmaTracker,
    HttpTransport,
    ReplayConfig,
    Replayer,
    format_slo_report,
    hedge_outcome,
)

KEYS = [("m1.large", "us-east-1a", 0.95), ("m2.xlarge", "us-east-1b", 0.95)]


class FakeTransport:
    """Advances the injected clock by a planned service time per call.

    ``plan(path, headers)`` returns the service seconds, or raises to
    model transport failures.
    """

    def __init__(self, clock, plan):
        self._clock = clock
        self._plan = plan
        self.calls: list[tuple[str, str, dict]] = []

    def __call__(self, target, path, timeout, headers):
        seconds = self._plan(path, headers)
        self._clock.sleep(seconds)
        self.calls.append((target, path, dict(headers)))
        return 200, b"{}"

    def close(self):
        pass


def _replayer(plan, clock=None, targets=("http://a",), **overrides):
    clock = clock or ManualClock()
    defaults = dict(
        n_requests=40, rate=100.0, warmup_requests=0, concurrency=0
    )
    defaults.update(overrides)
    transport = FakeTransport(clock, plan)
    replayer = Replayer(
        list(targets),
        KEYS,
        ReplayConfig(**defaults),
        transport=transport,
        clock=clock,
    )
    return replayer, transport


class TestHedgeOutcome:
    def test_fast_primary_never_hedges(self):
        assert hedge_outcome(0.005, None, 0.01) == (0.005, False, False)
        assert hedge_outcome(0.01, 0.001, 0.01) == (0.01, False, False)

    def test_hedge_wins_when_it_finishes_first(self):
        latency, hedged, won = hedge_outcome(0.5, 0.002, 0.01)
        assert latency == pytest.approx(0.012)
        assert hedged and won

    def test_primary_wins_slow_hedge(self):
        latency, hedged, won = hedge_outcome(0.05, 0.2, 0.01)
        assert latency == 0.05
        assert hedged and not won


class TestOpenLoopScheduling:
    def test_overload_queues_instead_of_slowing_arrivals(self):
        """Open-loop semantics: service slower than the inter-arrival gap
        shows up as growing queue delay and achieved < offered."""
        replayer, _ = _replayer(lambda path, headers: 0.05)
        report = replayer.run()
        # rate=100/s offered, but each request takes 0.05 s inline.
        assert report["achieved_rps"] < report["offered_rps"] * 0.5
        # 40 requests each ~0.04 s behind schedule accumulates seconds of
        # queue delay by the tail of the stream.
        assert report["queue_delay"]["max"] > 0.5
        assert report["queue_delay"]["max"] > report["queue_delay"]["p50"]

    def test_schedule_is_independent_of_service_time(self):
        """The arrival schedule (hence offered rate) is fixed by the seed,
        no matter how slow the server is — the defining open-loop
        property."""
        fast_report = _replayer(lambda path, headers: 0.0)[0].run()
        slow_report = _replayer(lambda path, headers: 0.05)[0].run()
        assert fast_report["offered_rps"] == pytest.approx(
            slow_report["offered_rps"]
        )

    def test_same_seed_is_deterministic(self):
        a = _replayer(lambda path, headers: 0.01)[0].run()
        b = _replayer(lambda path, headers: 0.01)[0].run()
        assert a == b

    def test_warmup_requests_are_dropped_from_the_report(self):
        replayer, _ = _replayer(
            lambda path, headers: 0.001, n_requests=30, warmup_requests=10
        )
        report = replayer.run()
        assert report["measured"] == 20
        assert report["warmup_dropped"] == 10


class TestHedgeAccounting:
    def test_fixed_delay_hedges_slow_primaries(self):
        calls = {"primaries": 0}

        def plan(path, headers):
            if headers.get(HEDGE_HEADER):
                return 0.001
            calls["primaries"] += 1
            # every 5th primary stalls well past the hedge delay
            return 0.2 if calls["primaries"] % 5 == 0 else 0.001

        replayer, transport = _replayer(
            plan,
            n_requests=30,
            hedge=True,
            hedge_delay_seconds=0.01,
        )
        report = replayer.run()
        assert report["hedge"]["launched"] == 6
        assert report["hedge"]["wins"] == 6
        assert report["hedge"]["win_rate"] == 1.0
        assert report["hedge"]["hedged_measured"] == 6
        # every winner resolved at delay + hedge service, not at the stall
        assert report["latency"]["max"] == pytest.approx(0.011)
        hedge_calls = [
            c for c in transport.calls if c[2].get(HEDGE_HEADER)
        ]
        assert len(hedge_calls) == 6

    def test_slow_hedge_loses_and_is_counted(self):
        def plan(path, headers):
            return 0.5 if headers.get(HEDGE_HEADER) else 0.05

        replayer, _ = _replayer(
            plan, n_requests=10, hedge=True, hedge_delay_seconds=0.01
        )
        report = replayer.run()
        assert report["hedge"]["launched"] == 10
        assert report["hedge"]["wins"] == 0
        assert report["latency"]["max"] == pytest.approx(0.05)

    def test_adaptive_delay_waits_for_min_samples(self):
        replayer, transport = _replayer(
            lambda path, headers: 0.001,
            n_requests=30,
            hedge=True,
            hedge_delay_seconds=None,
            hedge_min_samples=10,
        )
        report = replayer.run()
        # p95 of a 1 ms population gives a ~10 ms floor delay; nothing is
        # slow enough to hedge, and nothing hedges before 10 samples.
        assert report["hedge"]["launched"] == 0
        assert all(not c[2].get(HEDGE_HEADER) for c in transport.calls)
        assert report["hedge"]["delay_seconds"] >= 0.01

    def test_transport_failures_are_classified(self):
        calls = {"n": 0}

        def plan(path, headers):
            calls["n"] += 1
            if calls["n"] % 10 == 1:
                raise TimeoutError("slow")
            if calls["n"] % 10 == 2:
                raise OSError("refused")
            return 0.001

        replayer, _ = _replayer(plan, n_requests=20)
        report = replayer.run()
        assert report["timeout_rate"] == pytest.approx(2 / 20)
        assert report["error_rate"] == pytest.approx(2 / 20)
        assert report["responded"] == 16


class _FakeResponse:
    """Just enough of HTTPResponse for HttpTransport: headers, read(),
    isclosed(), status."""

    def __init__(self, *, closing=False, fully_read=True):
        self.status = 200
        self.headers = {"Connection": "close"} if closing else {}
        self._fully_read = fully_read

    def read(self):
        return b"{}"

    def isclosed(self):
        return self._fully_read


class _FakeConnection:
    """Stands in for http.client.HTTPConnection — no network, records
    closes, optional per-copy service delay (primaries vs hedges)."""

    primary_seconds = 0.0
    hedge_seconds = 0.0
    response_kwargs: dict = {}
    instances: list = []
    _lock = threading.Lock()

    def __init__(self, host, port, timeout=None):
        self.closed = False
        with _FakeConnection._lock:
            _FakeConnection.instances.append(self)

    def request(self, method, path, headers=None):
        self._hedge = bool((headers or {}).get(HEDGE_HEADER))

    def getresponse(self):
        seconds = (
            _FakeConnection.hedge_seconds
            if self._hedge
            else _FakeConnection.primary_seconds
        )
        if seconds:
            time.sleep(seconds)
        return _FakeResponse(**_FakeConnection.response_kwargs)

    def close(self):
        self.closed = True

    @classmethod
    def reset(cls, primary=0.0, hedge=0.0, **response_kwargs):
        cls.primary_seconds = primary
        cls.hedge_seconds = hedge
        cls.response_kwargs = response_kwargs
        cls.instances = []


@pytest.fixture
def fake_connections(monkeypatch):
    _FakeConnection.reset()
    monkeypatch.setattr(
        "repro.serving.replay.HTTPConnection", _FakeConnection
    )
    return _FakeConnection


def _assert_conserved(stats):
    """The pool conservation invariant: every connection ever created is
    idle, in flight, or discarded — none has leaked."""
    assert stats["created"] == (
        stats["idle"] + stats["in_flight"] + stats["discarded"]
    ), stats


class TestPoolConservation:
    """Hedge wins and losses must conserve the connection pool: every
    connection the transport creates ends up pooled, in flight, or
    discarded-and-closed — never leaked half-read or left open."""

    def test_release_after_close_discards_instead_of_leaking(
        self, fake_connections
    ):
        """Failing before: a connection released after close() (a losing
        hedge finishing late) was re-pooled into the fresh dict, leaving
        it open forever."""
        transport = HttpTransport()
        conn = transport._acquire("http://a")
        transport.close()  # replay finished while the hedge was in flight
        transport._release("http://a", conn)
        assert conn.closed
        stats = transport.stats()
        assert stats["idle"] == 0
        assert stats["in_flight"] == 0
        assert stats["discarded"] == 1
        _assert_conserved(stats)

    def test_half_read_response_is_discarded_not_pooled(
        self, fake_connections
    ):
        """A connection whose response body was not fully consumed must be
        discarded — reusing it would read the stale remainder."""
        fake_connections.reset(fully_read=False)
        transport = HttpTransport()
        status, body = transport("http://a", "/healthz", 5.0, {})
        assert status == 200
        stats = transport.stats()
        assert stats["discarded"] == 1
        assert stats["idle"] == 0
        _assert_conserved(stats)
        assert all(c.closed for c in fake_connections.instances)

    def test_fully_read_keep_alive_is_pooled_and_reused(
        self, fake_connections
    ):
        transport = HttpTransport()
        transport("http://a", "/healthz", 5.0, {})
        transport("http://a", "/healthz", 5.0, {})
        stats = transport.stats()
        assert stats["created"] == 1
        assert stats["reused"] == 1
        assert stats["idle"] == 1
        _assert_conserved(stats)

    def test_inline_replay_closes_its_own_transport(self, fake_connections):
        """Failing before: inline mode (concurrency=0) never closed the
        transport it owned, so the keep-alive pool outlived the replay."""
        replayer = Replayer(
            ["http://a"],
            KEYS,
            ReplayConfig(
                n_requests=8, rate=10000.0, warmup_requests=0, concurrency=0
            ),
        )
        report = replayer.run()
        stats = report["transport"]
        assert stats["closed"] is True
        assert stats["idle"] == 0
        assert stats["in_flight"] == 0
        assert stats["created"] == stats["discarded"]
        _assert_conserved(stats)
        assert all(c.closed for c in fake_connections.instances)

    def test_threaded_hedged_replay_conserves_the_pool(
        self, fake_connections
    ):
        """Hedges race a second connection per slow request; whether the
        hedge wins or the primary does, both connections must come home:
        no half-read leak, nothing left open after the replay."""
        fake_connections.reset(primary=0.03, hedge=0.001)
        replayer = Replayer(
            ["http://a"],
            KEYS,
            ReplayConfig(
                n_requests=12,
                rate=2000.0,
                warmup_requests=0,
                concurrency=4,
                hedge=True,
                hedge_delay_seconds=0.005,
            ),
        )
        report = replayer.run()
        assert report["hedge"]["launched"] > 0
        stats = report["transport"]
        assert stats["closed"] is True
        assert stats["in_flight"] == 0
        assert stats["idle"] == 0
        assert stats["created"] == stats["discarded"]
        _assert_conserved(stats)
        assert all(c.closed for c in fake_connections.instances)


class TestEwmaTracker:
    def test_slow_target_is_quarantined_and_recovers(self):
        clock = ManualClock()
        tracker = EwmaTracker(
            ["a", "b"],
            alpha=0.5,
            threshold=3.0,
            quarantine_seconds=1.0,
            clock=clock,
        )
        for _ in range(5):
            tracker.observe("a", 0.01)
        tracker.observe("b", 0.1)
        assert tracker.quarantined("b")
        assert tracker.eligible() == ["a"]
        assert tracker.pick(0) == "a"
        assert tracker.pick(1) == "a"
        clock.advance(1.5)
        assert not tracker.quarantined("b")
        assert tracker.eligible() == ["a", "b"]
        snapshot = tracker.snapshot()
        assert snapshot["b"]["quarantines"] == 1
        assert snapshot["a"]["ewma_seconds"] == pytest.approx(0.01)

    def test_hedge_prefers_a_different_target(self):
        tracker = EwmaTracker(["a", "b"], clock=ManualClock())
        assert tracker.pick_hedge("a", 0) == "b"
        assert tracker.pick_hedge("b", 0) == "a"
        single = EwmaTracker(["a"], clock=ManualClock())
        assert single.pick_hedge("a", 0) == "a"

    def test_single_target_never_quarantines(self):
        tracker = EwmaTracker(["a"], clock=ManualClock())
        for latency in (0.001, 5.0, 10.0):
            tracker.observe("a", latency)
        assert not tracker.quarantined("a")
        assert tracker.eligible() == ["a"]


class TestReplaySpiker:
    def test_spikes_primaries_spares_hedges(self):
        clock = ManualClock()
        spiker = ReplaySpiker(
            FaultConfig(spike_rate=1.0, spike_seconds=2.0, seed=3),
            clock=clock,
        )
        spiker("/predictions/x/y", {})
        assert clock.now() == pytest.approx(2.0)
        spiker("/predictions/x/y", {HEDGE_HEADER: "1"})
        assert clock.now() == pytest.approx(2.0)  # hedge never stalled
        assert spiker.injected_spikes == 1
        assert spiker.spared_hedges == 1

    def test_disabled_spiker_is_inert(self):
        clock = ManualClock()
        spiker = ReplaySpiker(
            FaultConfig(spike_rate=1.0, spike_seconds=2.0), clock=clock
        )
        spiker.enabled = False
        spiker("/x", {})
        assert clock.now() == 0.0
        assert spiker.injected_spikes == 0


class TestReportShape:
    def test_report_and_table_carry_the_slo_fields(self):
        replayer, _ = _replayer(lambda path, headers: 0.002, n_requests=50)
        report = replayer.run()
        for field in ("p50", "p95", "p99", "p999", "mean", "max"):
            assert report["latency"][field] >= 0.0
        assert report["statuses"] == {"200": 50}
        assert report["shed_rate"] == 0.0
        table = format_slo_report(report)
        assert "p99.9 latency" in table
        assert "hedges launched / won" in table


class TestHedgingCutsTail:
    def test_seeded_spikes_hedged_p999_below_unhedged(self):
        """End-to-end over a real socket: seeded server-side latency
        spikes, identical replay seed; hedging must cut the spike out of
        the measured p99.9 (loose bounds — thread scheduling varies)."""
        from repro.serving.bench import SloBenchConfig, run_slo_benchmark

        results = run_slo_benchmark(
            SloBenchConfig(
                n_keys=2,
                n_requests=400,
                rate=400.0,
                warmup_requests=50,
                hedge_demo_requests=300,
                hedge_demo_rate=150.0,
                spike_rate=0.08,
                spike_seconds=0.25,
                hedge_delay_seconds=0.02,
                seed=7,
            )
        )
        demo = results["hedge_demo"]
        assert demo["unhedged"]["injected_spikes"] > 5
        # unhedged tail sits on the spike plateau
        assert demo["unhedged"]["p999"] > 0.5 * 0.25
        # hedging cuts it well below — the acceptance criterion
        assert demo["ok"]
        assert demo["hedged"]["p999"] < 0.6 * demo["unhedged"]["p999"]
        assert demo["hedged"]["hedges_launched"] > 0
        # the main replay produced a full SLO table over the socket
        slo = results["slo"]
        assert slo["responded"] > 300
        assert slo["latency"]["p999"] >= slo["latency"]["p50"]
        assert slo["statuses"].get("200", 0) > 0
        assert results["drain"]["drained"] is True
