"""Unit tests for the EC2 API facade."""

import numpy as np
import pytest

from repro.cloud.api import HISTORY_WINDOW_SECONDS, EC2Api
from repro.market.obfuscation import AccountView


class TestMetadata:
    def test_regions_and_zones(self, small_universe):
        api = EC2Api(small_universe)
        assert api.describe_regions() == ("us-east-1", "us-west-1", "us-west-2")
        assert api.describe_availability_zones("us-west-1") == (
            "us-west-1a",
            "us-west-1b",
        )
        assert len(api.describe_instance_types()) == 53

    def test_ondemand_price(self, small_universe):
        api = EC2Api(small_universe)
        assert api.ondemand_price("m1.large", "us-west-2") == 0.175
        assert api.ondemand_tier("m1.large", "us-west-2").hourly_price == 0.175


class TestSpotAccess:
    def test_current_price_matches_trace(self, small_universe):
        api = EC2Api(small_universe)
        combo = small_universe.combo("c4.large", "us-east-1b")
        trace = small_universe.trace(combo)
        t = trace.start + 86400.0
        assert api.current_spot_price("c4.large", "us-east-1b", t) == (
            trace.price_at(t)
        )

    def test_unoffered_combo_rejected(self, small_universe):
        api = EC2Api(small_universe)
        with pytest.raises(KeyError):
            api.current_spot_price("cg1.4xlarge", "us-west-2a", 0.0)

    def test_history_window_capped_at_90_days(self, small_universe):
        api = EC2Api(small_universe)
        combo = small_universe.combo("c4.large", "us-east-1b")
        trace = small_universe.trace(combo)
        now = trace.end
        history = api.describe_spot_price_history("c4.large", "us-east-1b", now)
        assert history.end < now
        assert history.span <= HISTORY_WINDOW_SECONDS
        # The 70-day trace is shorter than 90 days: full prefix visible.
        assert history.start == trace.start

    def test_history_labelled_with_account_zone(self, small_universe):
        api = EC2Api(small_universe)
        combo = small_universe.combo("c4.large", "us-east-1b")
        now = small_universe.trace(combo).start + 10 * 86400.0
        history = api.describe_spot_price_history("c4.large", "us-east-1b", now)
        assert history.zone == "us-east-1b"
        assert history.end <= now

    def test_request_spot_instance_round_trip(self, small_universe):
        api = EC2Api(small_universe)
        combo = small_universe.combo("c4.large", "us-east-1b")
        trace = small_universe.trace(combo)
        t = trace.start + 40 * 86400.0
        price = trace.price_at(t)
        run = api.request_spot_instance(
            "c4.large", "us-east-1b", t, 1800.0, max_bid=price * 10
        )
        assert run.ran_seconds > 0


class TestDeltaHistory:
    """The ``since`` cursor form powering incremental curve refreshes."""

    def test_delta_matches_full_window_tail(self, small_universe):
        api = EC2Api(small_universe)
        combo = small_universe.combo("c4.large", "us-east-1b")
        now = small_universe.trace(combo).start + 45 * 86400.0
        full = api.describe_spot_price_history("c4.large", "us-east-1b", now)
        since = full.times[-40]
        delta = api.describe_spot_price_history(
            "c4.large", "us-east-1b", now, since=since
        )
        assert delta is not None
        np.testing.assert_array_equal(delta.times, full.times[-39:])
        np.testing.assert_array_equal(delta.prices, full.prices[-39:])
        assert delta.instance_type == full.instance_type
        assert delta.zone == "us-east-1b"

    def test_empty_delta_is_none(self, small_universe):
        api = EC2Api(small_universe)
        combo = small_universe.combo("c4.large", "us-east-1b")
        now = small_universe.trace(combo).start + 45 * 86400.0
        full = api.describe_spot_price_history("c4.large", "us-east-1b", now)
        assert (
            api.describe_spot_price_history(
                "c4.large", "us-east-1b", now, since=full.end
            )
            is None
        )

    def test_since_before_window_returns_whole_window(self, small_universe):
        api = EC2Api(small_universe)
        combo = small_universe.combo("c4.large", "us-east-1b")
        now = small_universe.trace(combo).start + 45 * 86400.0
        full = api.describe_spot_price_history("c4.large", "us-east-1b", now)
        delta = api.describe_spot_price_history(
            "c4.large", "us-east-1b", now, since=full.start - 86400.0
        )
        np.testing.assert_array_equal(delta.times, full.times)
        np.testing.assert_array_equal(delta.prices, full.prices)

    def test_delta_respects_obfuscated_zone_names(self, small_universe):
        view = AccountView("us-east-1", {"b": "c", "c": "d", "d": "e", "e": "b"})
        obfuscated = EC2Api(small_universe, {"us-east-1": view})
        plain = EC2Api(small_universe)
        now = small_universe.trace(
            small_universe.combo("c4.large", "us-east-1c")
        ).start + 45 * 86400.0
        since = now - 86400.0
        a = obfuscated.describe_spot_price_history(
            "c4.large", "us-east-1b", now, since=since
        )
        b = plain.describe_spot_price_history(
            "c4.large", "us-east-1c", now, since=since
        )
        np.testing.assert_array_equal(a.prices, b.prices)
        assert a.zone == "us-east-1b"  # labelled with the account's name


class TestObfuscatedAccount:
    def test_zone_names_translated(self, small_universe):
        view = AccountView("us-east-1", {"b": "c", "c": "d", "d": "e", "e": "b"})
        obfuscated = EC2Api(small_universe, {"us-east-1": view})
        plain = EC2Api(small_universe)
        t = small_universe.trace(
            small_universe.combo("c4.large", "us-east-1c")
        ).start + 86400.0
        # The obfuscated account's "us-east-1b" is physically us-east-1c.
        assert obfuscated.current_spot_price(
            "c4.large", "us-east-1b", t
        ) == plain.current_spot_price("c4.large", "us-east-1c", t)

    def test_zone_listing_stays_within_region_letters(self, small_universe):
        view = AccountView("us-east-1", {"b": "c", "c": "d", "d": "e", "e": "b"})
        api = EC2Api(small_universe, {"us-east-1": view})
        zones = api.describe_availability_zones("us-east-1")
        assert sorted(zones) == [
            "us-east-1b",
            "us-east-1c",
            "us-east-1d",
            "us-east-1e",
        ]

    def test_other_regions_untouched(self, small_universe):
        view = AccountView("us-east-1", {"b": "c", "c": "b", "d": "d", "e": "e"})
        api = EC2Api(small_universe, {"us-east-1": view})
        assert api.describe_availability_zones("us-west-1") == (
            "us-west-1a",
            "us-west-1b",
        )
