"""Unit tests for the DrAFTS service and its cache behaviour."""

import math

import numpy as np
import pytest

from repro.cloud.api import HISTORY_WINDOW_SECONDS, EC2Api
from repro.core.drafts import DraftsConfig, DraftsPredictor
from repro.market.traces import PriceTrace
from repro.service.drafts_service import DraftsService, ServiceConfig

DAY = 86400.0


def curves_equal(a, b) -> bool:
    """Bit-equality of published curves, with nan == nan allowed."""
    if a is None or b is None:
        return a is b
    if a.bids != b.bids or a.computed_at != b.computed_at:
        return False
    return all(
        x == y or (math.isnan(x) and math.isnan(y))
        for x, y in zip(a.durations, b.durations)
    )


class _ScriptedApi:
    """A minimal history API over one synthetic trace — same windowing and
    delta semantics as :class:`EC2Api`, but with a trace the test controls
    (long horizons, injected spikes)."""

    def __init__(self, trace: PriceTrace) -> None:
        self._trace = trace

    def describe_spot_price_history(self, instance_type, zone, now, since=None):
        window = self._trace.window_before(now, HISTORY_WINDOW_SECONDS)
        if since is None:
            return window.with_labels(instance_type, zone)
        keep = window.times > since
        if not keep.any():
            return None
        return PriceTrace(
            window.times[keep].copy(),
            window.prices[keep].copy(),
            instance_type,
            zone,
        )


def _hourly_trace(days: int, rng: int = 0, spikes: dict | None = None):
    """A positive hourly-price trace; ``spikes`` maps hour index -> price."""
    n = days * 24
    r = np.random.default_rng(rng)
    prices = np.abs(0.08 * (1.0 + 0.05 * r.standard_normal(n))) + 0.01
    for hour, price in (spikes or {}).items():
        prices[hour] = price
    return PriceTrace(3600.0 * np.arange(n), prices)


@pytest.fixture(scope="module")
def service_env(request):
    small_universe = request.getfixturevalue("small_universe")
    api = EC2Api(small_universe)
    service = DraftsService(api)
    combo = small_universe.combo("c4.large", "us-east-1b")
    now = small_universe.trace(combo).start + 45 * 86400.0
    return service, now


class TestServiceConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            ServiceConfig(probabilities=())
        with pytest.raises(ValueError):
            ServiceConfig(probabilities=(1.2,))
        with pytest.raises(ValueError):
            ServiceConfig(refresh_seconds=0)

    def test_paper_defaults(self):
        cfg = ServiceConfig()
        assert cfg.probabilities == (0.95, 0.99)
        assert cfg.refresh_seconds == 900.0
        assert cfg.ladder_increment == 0.05
        assert cfg.ladder_span == 4.0


class TestCurves:
    def test_curve_published(self, service_env):
        service, now = service_env
        curve = service.curve("c4.large", "us-east-1b", 0.95, now)
        assert curve is not None
        assert curve.probability == 0.95
        assert curve.instance_type == "c4.large"
        assert len(curve) >= 20  # 5% rungs to 4x the minimum

    def test_unpublished_probability_rejected(self, service_env):
        service, now = service_env
        with pytest.raises(ValueError):
            service.curve("c4.large", "us-east-1b", 0.80, now)

    def test_cache_hit_within_refresh_window(self, service_env):
        service, now = service_env
        a = service.curve("c4.large", "us-east-1b", 0.95, now)
        b = service.curve("c4.large", "us-east-1b", 0.95, now + 100.0)
        assert a is b  # same object: served from cache

    def test_recompute_after_refresh_interval(self, service_env):
        service, now = service_env
        a = service.curve("c4.large", "us-east-1b", 0.95, now)
        c = service.curve("c4.large", "us-east-1b", 0.95, now + 3600.0)
        assert a is not c

    def test_insufficient_history_returns_none(self, small_universe):
        api = EC2Api(small_universe)
        service = DraftsService(api)
        combo = small_universe.combo("c4.large", "us-east-1b")
        early = small_universe.trace(combo).start + 4 * 3600.0
        assert service.curve("c4.large", "us-east-1b", 0.95, early) is None


class TestQueries:
    def test_bid_for_duration(self, service_env):
        service, now = service_env
        bid = service.bid_for_duration(
            "c4.large", "us-east-1b", 0.95, 1800.0, now
        )
        assert not math.isnan(bid)
        huge = service.bid_for_duration(
            "c4.large", "us-east-1b", 0.95, 500 * 3600.0, now
        )
        assert math.isnan(huge)

    def test_cheapest_zone(self, service_env):
        service, now = service_env
        zone, bid = service.cheapest_zone("c4.large", "us-east-1", 0.95, now)
        assert zone.startswith("us-east-1")
        assert bid > 0
        # It really is the cheapest among the region's curves.
        for z in ("us-east-1b", "us-east-1c", "us-east-1d", "us-east-1e"):
            curve = service.curve("c4.large", z, 0.95, now)
            if curve is not None:
                assert bid <= curve.minimum_bid + 1e-12

    def test_cheapest_zone_skips_unoffered(self, service_env):
        service, now = service_env
        # cg1.4xlarge exists only in two us-east-1 AZs; the query must
        # succeed using just those.
        zone, _ = service.cheapest_zone("cg1.4xlarge", "us-east-1", 0.95, now)
        assert zone in ("us-east-1b", "us-east-1c")


class TestRefreshEdges:
    def test_past_query_recomputes(self, small_universe):
        """``now < computed_at`` (a backtest rewinding time) must not be
        served from the future-computed cache entry."""
        api = EC2Api(small_universe)
        service = DraftsService(api)
        combo = small_universe.combo("c4.large", "us-east-1b")
        late = small_universe.trace(combo).start + 50 * 86400.0
        a = service.curve("c4.large", "us-east-1b", 0.95, late)
        b = service.curve("c4.large", "us-east-1b", 0.95, late - 5 * 86400.0)
        assert a is not None and b is not None
        assert a is not b  # recomputed, not served stale-from-the-future
        # And the rewound query's answer only uses history before it.
        assert b.computed_at <= late - 5 * 86400.0


class TestPredictorEviction:
    def test_lru_bound_and_cache_info(self, small_universe):
        api = EC2Api(small_universe)
        service = DraftsService(
            api, ServiceConfig(probabilities=(0.95,), max_predictors=2)
        )
        combo = small_universe.combo("c4.large", "us-east-1b")
        now = small_universe.trace(combo).start + 45 * 86400.0
        for zone in ("us-east-1b", "us-east-1c", "us-east-1d"):
            service.curve("c4.large", zone, 0.95, now)
        info = service.cache_info()
        assert info["entries"] == 3  # curves stay cached ...
        assert info["predictors"] == 2  # ... but predictors are bounded
        assert info["evictions"] == 1
        assert info["recomputes"] == 3

    def test_recompute_replaces_predictor(self, small_universe):
        api = EC2Api(small_universe)
        service = DraftsService(api, ServiceConfig(probabilities=(0.95,)))
        combo = small_universe.combo("c4.large", "us-east-1b")
        now = small_universe.trace(combo).start + 45 * 86400.0
        service.curve("c4.large", "us-east-1b", 0.95, now)
        service.curve("c4.large", "us-east-1b", 0.95, now + 3600.0)
        info = service.cache_info()
        assert info["recomputes"] == 2
        assert info["predictors"] == 1  # replaced, not accumulated

    def test_hit_miss_counters(self, small_universe):
        api = EC2Api(small_universe)
        service = DraftsService(api, ServiceConfig(probabilities=(0.95,)))
        combo = small_universe.combo("c4.large", "us-east-1b")
        now = small_universe.trace(combo).start + 45 * 86400.0
        service.curve("c4.large", "us-east-1b", 0.95, now)
        service.curve("c4.large", "us-east-1b", 0.95, now + 10.0)
        info = service.cache_info()
        assert info["misses"] == 1
        assert info["hits"] == 1


class TestIncrementalRefresh:
    """The tentpole contract: steady-state refreshes are delta-fed into a
    long-lived online predictor, full refits happen only on the documented
    discontinuities, and every published curve is bit-identical to a
    from-scratch batch fit of the same history."""

    P = 0.95

    def _fresh(self, small_universe, **overrides):
        api = EC2Api(small_universe)
        service = DraftsService(
            api, ServiceConfig(probabilities=(self.P,), **overrides)
        )
        combo = small_universe.combo("c4.large", "us-east-1b")
        now = small_universe.trace(combo).start + 45 * DAY
        return api, service, now

    def _batch_curve(self, api, service, zone, now):
        """A from-scratch fit of the key's windowed history at ``now``,
        using the key's pinned ladder domain."""
        info = service.key_info("c4.large", zone, self.P)
        history = api.describe_spot_price_history("c4.large", zone, now)
        cfg = DraftsConfig(
            probability=self.P,
            ladder_increment=service.config.ladder_increment,
            ladder_span=service.config.ladder_span,
            max_price=info["max_price"],
        )
        return DraftsPredictor(history, cfg).curve_at(
            len(history), instance_type="c4.large", zone=zone
        )

    def test_refresh_boundaries_bit_identical_to_batch(self, small_universe):
        api, service, now = self._fresh(small_universe)
        zone = "us-east-1b"
        for k in range(6):
            t = now + k * 960.0
            served = service.curve("c4.large", zone, self.P, t)
            assert served is not None
            assert curves_equal(
                served, self._batch_curve(api, service, zone, t)
            ), f"diverged at refresh boundary {k}"
        info = service.cache_info()
        assert info["cold_fits"] == 1
        assert info["refits"] == 0
        assert info["refit_reasons"] == {"cold": 1}
        assert info["incremental_refreshes"] == 5
        assert info["recomputes"] == (
            info["cold_fits"]
            + info["refits"]
            + info["incremental_refreshes"]
        )

    def test_incremental_off_publishes_identical_curves(self, small_universe):
        _, a, now = self._fresh(small_universe)
        _, b, _ = self._fresh(small_universe, incremental=False)
        zone = "us-east-1c"
        for k in range(4):
            t = now + k * 960.0
            assert curves_equal(
                a.curve("c4.large", zone, self.P, t),
                b.curve("c4.large", zone, self.P, t),
            ), f"modes diverged at refresh boundary {k}"
        assert a.cache_info()["incremental_refreshes"] == 3
        assert a.key_info("c4.large", zone, self.P)["mode"] == "incremental"
        # The first fit is the boot-time cold one; with incremental off,
        # every later recompute is a steady-state refit of a warm key.
        assert b.cache_info()["cold_fits"] == 1
        assert b.cache_info()["refits"] == 3
        assert b.cache_info()["incremental_refreshes"] == 0
        assert b.key_info("c4.large", zone, self.P)["mode"] == "batch"

    def test_zero_announcement_delta_republishes_same_object(
        self, small_universe
    ):
        api, service, now = self._fresh(small_universe, refresh_seconds=60.0)
        zone = "us-east-1b"
        t1 = now + 10.0  # cursor lands on the 300-s announcement grid
        a = service.curve("c4.large", zone, self.P, t1)
        b = service.curve("c4.large", zone, self.P, t1 + 61.0)  # stale, no news
        assert b is a  # the identical object is republished
        info = service.cache_info()
        assert info["cold_fits"] == 1
        assert info["incremental_refreshes"] == 1

    def test_rewind_forces_full_refit(self, small_universe):
        api, service, now = self._fresh(small_universe)
        zone = "us-east-1b"
        a = service.curve("c4.large", zone, self.P, now)
        b = service.curve("c4.large", zone, self.P, now - 5 * DAY)
        assert a is not None and b is not None
        assert not curves_equal(a, b)
        assert service.cache_info()["refit_reasons"] == {"cold": 1, "rewind": 1}
        assert curves_equal(
            b, self._batch_curve(api, service, zone, now - 5 * DAY)
        )

    def test_gap_beyond_api_window_forces_full_refit(self, small_universe):
        api, service, now = self._fresh(small_universe)
        zone = "us-east-1b"
        service.curve("c4.large", zone, self.P, now)
        # 136d - 90d window = 46d > the 45d cursor: announcements missed.
        far = now + 91 * DAY
        b = service.curve("c4.large", zone, self.P, far)
        assert service.cache_info()["refit_reasons"] == {"cold": 1, "gap": 1}
        assert curves_equal(b, self._batch_curve(api, service, zone, far))

    def test_eviction_then_refit_stays_identical(self, small_universe):
        api, service, now = self._fresh(small_universe, max_predictors=1)
        for k in range(4):
            t = now + k * 960.0
            for zone in ("us-east-1b", "us-east-1c"):
                served = service.curve("c4.large", zone, self.P, t)
                assert curves_equal(
                    served, self._batch_curve(api, service, zone, t)
                ), f"diverged after eviction at boundary {k} ({zone})"
        info = service.cache_info()
        assert info["predictors"] == 1
        assert info["evictions"] == 7  # every touch displaced the other key
        assert info["refit_reasons"] == {"cold": 8}
        # Post-eviction keys hold no state, so every fit was a cold one.
        assert info["cold_fits"] == 8
        assert info["refits"] == 0
        assert info["incremental_refreshes"] == 0

    def test_max_price_pinned_across_refits(self):
        # A $20 spike on day 1.25 is inside the first fit's window ...
        trace = _hourly_trace(250, rng=1, spikes={30: 20.0})
        service = DraftsService(
            _ScriptedApi(trace), ServiceConfig(probabilities=(self.P,))
        )
        service.curve("c4.large", "z", self.P, 91 * DAY)
        assert service.key_info("c4.large", "z", self.P)["max_price"] == 160.0
        # ... and has left the 90-day window by day 130. A rewind then
        # forces a full refit; the pre-fix service would re-derive
        # max_price = 100 from the spike-free window and silently lay out
        # a different ladder. The pin must hold.
        service.curve("c4.large", "z", self.P, 130 * DAY)
        service.curve("c4.large", "z", self.P, 120 * DAY)
        assert service.key_info("c4.large", "z", self.P)["max_price"] == 160.0
        assert service.cache_info()["refit_reasons"]["rewind"] == 1

    def test_out_of_domain_price_triggers_ladder_change_refit(self):
        trace = _hourly_trace(100, rng=2, spikes={95 * 24: 900.0})
        api = _ScriptedApi(trace)
        service = DraftsService(api, ServiceConfig(probabilities=(self.P,)))
        service.curve("c4.large", "z", self.P, 94 * DAY)
        assert service.key_info("c4.large", "z", self.P)["max_price"] == 100.0
        # The next delta carries the $900 spike — outside the pinned
        # quantile-tracker domain, so the refresh must be a full refit at
        # a re-pinned domain, not a silent incremental update.
        t2 = 95 * DAY + 7200.0
        served = service.curve("c4.large", "z", self.P, t2)
        info = service.key_info("c4.large", "z", self.P)
        assert info["max_price"] == 7200.0  # re-pinned: 8 x 900
        reasons = service.cache_info()["refit_reasons"]
        assert reasons == {"cold": 1, "ladder_change": 1}
        history = api.describe_spot_price_history("c4.large", "z", t2)
        cfg = DraftsConfig(probability=self.P, max_price=7200.0)
        batch = DraftsPredictor(history, cfg).curve_at(
            len(history), instance_type="c4.large", zone="z"
        )
        assert curves_equal(served, batch)

    def test_rewindow_refit_bounds_accumulated_history(self):
        trace = _hourly_trace(250, rng=3)
        service = DraftsService(
            _ScriptedApi(trace),
            ServiceConfig(probabilities=(self.P,), rewindow_factor=1.0),
        )
        t = 91 * DAY
        while t < 100 * DAY:
            assert service.curve("c4.large", "z", self.P, t) is not None
            info = service.key_info("c4.large", "z", self.P)
            # The accumulated span never exceeds factor x window + one
            # refresh worth of drift before the refit re-clips it.
            assert info["n"] <= (HISTORY_WINDOW_SECONDS / 3600.0) + 24
            t += 6 * 3600.0
        info = service.cache_info()
        assert info["refit_reasons"].get("rewindow", 0) >= 1
        assert info["incremental_refreshes"] >= 1


class TestBatchedTick:
    """The universe-wide batch path: enrolled keys refresh through a shared
    :class:`~repro.core.universe.UniverseTicker` and must publish exactly
    what the scalar incremental path publishes."""

    P = 0.95
    ZONES = ("us-east-1b", "us-east-1c")

    def _fresh(self, small_universe, **overrides):
        api = EC2Api(small_universe)
        service = DraftsService(
            api, ServiceConfig(probabilities=(self.P,), **overrides)
        )
        combo = small_universe.combo("c4.large", "us-east-1b")
        now = small_universe.trace(combo).start + 45 * DAY
        return api, service, now

    def test_batched_curves_identical_to_scalar_path(self, small_universe):
        _, batched, now = self._fresh(small_universe)
        _, scalar, _ = self._fresh(small_universe, batch=False)
        for k in range(5):
            t = now + k * 960.0
            for zone in self.ZONES:
                assert curves_equal(
                    batched.curve("c4.large", zone, self.P, t),
                    scalar.curve("c4.large", zone, self.P, t),
                ), f"paths diverged at boundary {k} ({zone})"
        b_info, s_info = batched.cache_info(), scalar.cache_info()
        # Same refresh work either way; only the mechanism differs.
        assert b_info["incremental_refreshes"] == s_info["incremental_refreshes"]
        assert b_info["batch_ticks"] == b_info["incremental_refreshes"] > 0
        assert b_info["scalar_ticks"] == 0
        assert b_info["batch_keys"] == len(self.ZONES)
        assert s_info["batch_ticks"] == 0
        assert s_info["scalar_ticks"] == s_info["incremental_refreshes"] > 0
        assert s_info["batch_keys"] == 0

    def test_key_info_reports_enrollment(self, small_universe):
        _, batched, now = self._fresh(small_universe)
        _, scalar, _ = self._fresh(small_universe, batch=False)
        for service in (batched, scalar):
            service.curve("c4.large", "us-east-1b", self.P, now)
            service.curve("c4.large", "us-east-1b", self.P, now + 960.0)
        b_info = batched.key_info("c4.large", "us-east-1b", self.P)
        s_info = scalar.key_info("c4.large", "us-east-1b", self.P)
        assert b_info["mode"] == s_info["mode"] == "incremental"
        assert b_info["batched"] is True
        assert s_info["batched"] is False
        # The enrolled key's history length is read through the ticker.
        assert b_info["n"] == s_info["n"] > 0

    def test_batch_refresh_sweeps_all_enrolled_keys(self, small_universe):
        _, service, now = self._fresh(small_universe)
        _, reference, _ = self._fresh(small_universe, batch=False)
        for zone in self.ZONES:
            service.curve("c4.large", zone, self.P, now)
        later = now + 960.0
        swept = service.batch_refresh(later)
        assert swept == {
            "keys": len(self.ZONES),
            "refits": 0,
            "epochs": swept["epochs"],
            "skipped": 0,
        }
        assert swept["epochs"] > 0
        hits_before = service.cache_info()["hits"]
        for zone in self.ZONES:
            # The sweep already published: this is a pure cache hit, and
            # the curve matches the scalar path at the same instant.
            assert curves_equal(
                service.curve("c4.large", zone, self.P, later),
                reference.curve("c4.large", zone, self.P, later),
            )
        assert service.cache_info()["hits"] == hits_before + len(self.ZONES)
        # A second sweep at the same instant has nothing to do.
        again = service.batch_refresh(later)
        assert again == {"keys": 0, "refits": 0, "epochs": 0, "skipped": 2}

    def test_batch_refresh_refits_and_reenrolls_on_gap(self, small_universe):
        api, service, now = self._fresh(small_universe)
        service.curve("c4.large", "us-east-1b", self.P, now)
        # 91 days later the delta window no longer reaches the cursor: the
        # sweep must eject the key, refit it, and re-enroll it.
        far = now + 91 * DAY
        swept = service.batch_refresh(far)
        assert swept["refits"] == 1 and swept["keys"] == 0
        assert service.cache_info()["refit_reasons"] == {"cold": 1, "gap": 1}
        info = service.key_info("c4.large", "us-east-1b", self.P)
        assert info["batched"] is True and info["last_now"] == far
        # The refit sweep published the refit curve at ``far``.
        hits_before = service.cache_info()["hits"]
        assert service.curve("c4.large", "us-east-1b", self.P, far) is not None
        assert service.cache_info()["hits"] == hits_before + 1

    def test_batch_refresh_disabled_modes_are_noops(self, small_universe):
        for overrides in ({"batch": False}, {"incremental": False}):
            _, service, now = self._fresh(small_universe, **overrides)
            service.curve("c4.large", "us-east-1b", self.P, now)
            assert service.batch_refresh(now + 960.0) == {
                "keys": 0, "refits": 0, "epochs": 0, "skipped": 0,
            }
            assert service.cache_info()["batch_keys"] == 0

    def test_eviction_unenrolls_without_ghost_slots(self, small_universe):
        api, service, now = self._fresh(small_universe, max_predictors=1)
        for k in range(3):
            t = now + k * 960.0
            for zone in self.ZONES:
                assert service.curve("c4.large", zone, self.P, t) is not None
        info = service.cache_info()
        assert info["predictors"] == 1
        # Every eviction removed the displaced key's ticker slot too.
        assert info["batch_keys"] <= 1


class TestServiceInvariants:
    def test_published_minimum_bid_is_admissible(self, service_env, small_universe):
        """A curve's minimum bid must exceed the quoted market price at
        publication time (the tick premium of §3.2) — otherwise the
        service would recommend bids that cannot even launch."""
        service, now = service_env
        combo = small_universe.combo("c4.large", "us-east-1b")
        trace = small_universe.trace(combo)
        for offset in range(0, 5 * 86400, 86400):
            t = now + offset
            curve = service.curve("c4.large", "us-east-1b", 0.95, t)
            if curve is None:
                continue
            assert curve.minimum_bid > trace.price_at(curve.computed_at)

    def test_curves_at_both_probability_levels(self, service_env):
        """§3.3: the service publishes 0.95 and 0.99 levels; the stricter
        level's minimum bid is at least the looser one's."""
        service, now = service_env
        c95 = service.curve("c4.large", "us-east-1b", 0.95, now)
        c99 = service.curve("c4.large", "us-east-1b", 0.99, now)
        assert c95 is not None and c99 is not None
        assert c99.minimum_bid >= c95.minimum_bid - 1e-9
