"""Unit tests for the DrAFTS service and its cache behaviour."""

import math

import pytest

from repro.cloud.api import EC2Api
from repro.service.drafts_service import DraftsService, ServiceConfig


@pytest.fixture(scope="module")
def service_env(request):
    small_universe = request.getfixturevalue("small_universe")
    api = EC2Api(small_universe)
    service = DraftsService(api)
    combo = small_universe.combo("c4.large", "us-east-1b")
    now = small_universe.trace(combo).start + 45 * 86400.0
    return service, now


class TestServiceConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            ServiceConfig(probabilities=())
        with pytest.raises(ValueError):
            ServiceConfig(probabilities=(1.2,))
        with pytest.raises(ValueError):
            ServiceConfig(refresh_seconds=0)

    def test_paper_defaults(self):
        cfg = ServiceConfig()
        assert cfg.probabilities == (0.95, 0.99)
        assert cfg.refresh_seconds == 900.0
        assert cfg.ladder_increment == 0.05
        assert cfg.ladder_span == 4.0


class TestCurves:
    def test_curve_published(self, service_env):
        service, now = service_env
        curve = service.curve("c4.large", "us-east-1b", 0.95, now)
        assert curve is not None
        assert curve.probability == 0.95
        assert curve.instance_type == "c4.large"
        assert len(curve) >= 20  # 5% rungs to 4x the minimum

    def test_unpublished_probability_rejected(self, service_env):
        service, now = service_env
        with pytest.raises(ValueError):
            service.curve("c4.large", "us-east-1b", 0.80, now)

    def test_cache_hit_within_refresh_window(self, service_env):
        service, now = service_env
        a = service.curve("c4.large", "us-east-1b", 0.95, now)
        b = service.curve("c4.large", "us-east-1b", 0.95, now + 100.0)
        assert a is b  # same object: served from cache

    def test_recompute_after_refresh_interval(self, service_env):
        service, now = service_env
        a = service.curve("c4.large", "us-east-1b", 0.95, now)
        c = service.curve("c4.large", "us-east-1b", 0.95, now + 3600.0)
        assert a is not c

    def test_insufficient_history_returns_none(self, small_universe):
        api = EC2Api(small_universe)
        service = DraftsService(api)
        combo = small_universe.combo("c4.large", "us-east-1b")
        early = small_universe.trace(combo).start + 4 * 3600.0
        assert service.curve("c4.large", "us-east-1b", 0.95, early) is None


class TestQueries:
    def test_bid_for_duration(self, service_env):
        service, now = service_env
        bid = service.bid_for_duration(
            "c4.large", "us-east-1b", 0.95, 1800.0, now
        )
        assert not math.isnan(bid)
        huge = service.bid_for_duration(
            "c4.large", "us-east-1b", 0.95, 500 * 3600.0, now
        )
        assert math.isnan(huge)

    def test_cheapest_zone(self, service_env):
        service, now = service_env
        zone, bid = service.cheapest_zone("c4.large", "us-east-1", 0.95, now)
        assert zone.startswith("us-east-1")
        assert bid > 0
        # It really is the cheapest among the region's curves.
        for z in ("us-east-1b", "us-east-1c", "us-east-1d", "us-east-1e"):
            curve = service.curve("c4.large", z, 0.95, now)
            if curve is not None:
                assert bid <= curve.minimum_bid + 1e-12

    def test_cheapest_zone_skips_unoffered(self, service_env):
        service, now = service_env
        # cg1.4xlarge exists only in two us-east-1 AZs; the query must
        # succeed using just those.
        zone, _ = service.cheapest_zone("cg1.4xlarge", "us-east-1", 0.95, now)
        assert zone in ("us-east-1b", "us-east-1c")


class TestRefreshEdges:
    def test_past_query_recomputes(self, small_universe):
        """``now < computed_at`` (a backtest rewinding time) must not be
        served from the future-computed cache entry."""
        api = EC2Api(small_universe)
        service = DraftsService(api)
        combo = small_universe.combo("c4.large", "us-east-1b")
        late = small_universe.trace(combo).start + 50 * 86400.0
        a = service.curve("c4.large", "us-east-1b", 0.95, late)
        b = service.curve("c4.large", "us-east-1b", 0.95, late - 5 * 86400.0)
        assert a is not None and b is not None
        assert a is not b  # recomputed, not served stale-from-the-future
        # And the rewound query's answer only uses history before it.
        assert b.computed_at <= late - 5 * 86400.0


class TestPredictorEviction:
    def test_lru_bound_and_cache_info(self, small_universe):
        api = EC2Api(small_universe)
        service = DraftsService(
            api, ServiceConfig(probabilities=(0.95,), max_predictors=2)
        )
        combo = small_universe.combo("c4.large", "us-east-1b")
        now = small_universe.trace(combo).start + 45 * 86400.0
        for zone in ("us-east-1b", "us-east-1c", "us-east-1d"):
            service.curve("c4.large", zone, 0.95, now)
        info = service.cache_info()
        assert info["entries"] == 3  # curves stay cached ...
        assert info["predictors"] == 2  # ... but predictors are bounded
        assert info["evictions"] == 1
        assert info["recomputes"] == 3

    def test_recompute_replaces_predictor(self, small_universe):
        api = EC2Api(small_universe)
        service = DraftsService(api, ServiceConfig(probabilities=(0.95,)))
        combo = small_universe.combo("c4.large", "us-east-1b")
        now = small_universe.trace(combo).start + 45 * 86400.0
        service.curve("c4.large", "us-east-1b", 0.95, now)
        service.curve("c4.large", "us-east-1b", 0.95, now + 3600.0)
        info = service.cache_info()
        assert info["recomputes"] == 2
        assert info["predictors"] == 1  # replaced, not accumulated

    def test_hit_miss_counters(self, small_universe):
        api = EC2Api(small_universe)
        service = DraftsService(api, ServiceConfig(probabilities=(0.95,)))
        combo = small_universe.combo("c4.large", "us-east-1b")
        now = small_universe.trace(combo).start + 45 * 86400.0
        service.curve("c4.large", "us-east-1b", 0.95, now)
        service.curve("c4.large", "us-east-1b", 0.95, now + 10.0)
        info = service.cache_info()
        assert info["misses"] == 1
        assert info["hits"] == 1


class TestServiceInvariants:
    def test_published_minimum_bid_is_admissible(self, service_env, small_universe):
        """A curve's minimum bid must exceed the quoted market price at
        publication time (the tick premium of §3.2) — otherwise the
        service would recommend bids that cannot even launch."""
        service, now = service_env
        combo = small_universe.combo("c4.large", "us-east-1b")
        trace = small_universe.trace(combo)
        for offset in range(0, 5 * 86400, 86400):
            t = now + offset
            curve = service.curve("c4.large", "us-east-1b", 0.95, t)
            if curve is None:
                continue
            assert curve.minimum_bid > trace.price_at(curve.computed_at)

    def test_curves_at_both_probability_levels(self, service_env):
        """§3.3: the service publishes 0.95 and 0.99 levels; the stricter
        level's minimum bid is at least the looser one's."""
        service, now = service_env
        c95 = service.curve("c4.large", "us-east-1b", 0.95, now)
        c99 = service.curve("c4.large", "us-east-1b", 0.99, now)
        assert c95 is not None and c99 is not None
        assert c99.minimum_bid >= c95.minimum_bid - 1e-9
