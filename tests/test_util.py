"""Unit tests for the util package."""

import numpy as np
import pytest

from repro.util.rng import RngFactory, halton, rng_from, spawn_rngs
from repro.util.stats import Summary, ecdf, empirical_quantile, summary
from repro.util.tables import format_table
from repro.util.timeutils import (
    EPOCH_SECONDS,
    billable_hours,
    epochs_to_seconds,
    hours_to_seconds,
    seconds_to_epochs,
    seconds_to_hours,
)
from repro.util.validation import check_fraction, check_positive, check_probability


class TestRng:
    def test_same_key_same_stream(self):
        f = RngFactory(42)
        a = f.generator("x").random(5)
        b = f.generator("x").random(5)
        np.testing.assert_array_equal(a, b)

    def test_different_keys_differ(self):
        f = RngFactory(42)
        a = f.generator("x").random(5)
        b = f.generator("y").random(5)
        assert not np.array_equal(a, b)

    def test_child_namespacing(self):
        f = RngFactory(42)
        a = f.child("ns").generator("x").random(3)
        b = f.generator("x").random(3)
        assert not np.array_equal(a, b)

    def test_negative_seed_rejected(self):
        with pytest.raises(ValueError):
            RngFactory(-1)

    def test_spawn_rngs_independent(self):
        gens = spawn_rngs(7, 3)
        assert len(gens) == 3
        draws = [g.random(4) for g in gens]
        assert not np.array_equal(draws[0], draws[1])
        with pytest.raises(ValueError):
            spawn_rngs(7, -1)

    def test_rng_from(self):
        g = np.random.default_rng(0)
        assert rng_from(g) is g
        assert isinstance(rng_from(5), np.random.Generator)

    def test_halton_low_discrepancy(self):
        vals = halton(np.arange(1, 65))
        assert np.all((vals >= 0) & (vals < 1))
        # Coverage: every one of 8 bins occupied by 64 points.
        hist, _ = np.histogram(vals, bins=8, range=(0, 1))
        assert np.all(hist > 0)
        with pytest.raises(ValueError):
            halton([-1])


class TestStats:
    def test_ecdf(self):
        x, f = ecdf(np.array([3.0, 1.0, 2.0]))
        np.testing.assert_allclose(x, [1.0, 2.0, 3.0])
        np.testing.assert_allclose(f, [1 / 3, 2 / 3, 1.0])
        with pytest.raises(ValueError):
            ecdf(np.array([]))

    def test_empirical_quantile_is_observation(self, rng):
        x = rng.normal(size=101)
        q = empirical_quantile(x, 0.9)
        assert q in x
        assert np.mean(x <= q) >= 0.9

    def test_empirical_quantile_validation(self):
        with pytest.raises(ValueError):
            empirical_quantile(np.array([1.0]), 0.0)
        with pytest.raises(ValueError):
            empirical_quantile(np.array([]), 0.5)

    def test_summary(self):
        s = summary(np.array([1.0, 2.0, 3.0]))
        assert s == Summary(n=3, mean=2.0, std=pytest.approx(0.8165, abs=1e-3),
                            minimum=1.0, median=2.0, maximum=3.0)


class TestTables:
    def test_alignment_and_title(self):
        out = format_table(
            ["A", "Blong"], [["x", 1.23456], ["yy", 2]], title="T"
        )
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "A" in lines[1] and "Blong" in lines[1]
        assert len(lines) == 5

    def test_row_width_checked(self):
        with pytest.raises(ValueError):
            format_table(["A"], [["x", "extra"]])


class TestTimeUtils:
    def test_conversions(self):
        assert hours_to_seconds(2) == 7200.0
        assert seconds_to_hours(5400.0) == 1.5
        assert seconds_to_epochs(601.0) == 2
        assert epochs_to_seconds(3) == 3 * EPOCH_SECONDS

    def test_billable_hours_is_covered_elsewhere(self):
        assert billable_hours(3300.0) == 1


class TestValidation:
    def test_probability(self):
        assert check_probability(0.5) == 0.5
        for bad in (0.0, 1.0, -1.0, 2.0):
            with pytest.raises(ValueError):
                check_probability(bad)

    def test_fraction(self):
        assert check_fraction(0.0) == 0.0
        assert check_fraction(1.0) == 1.0
        with pytest.raises(ValueError):
            check_fraction(1.01)

    def test_positive(self):
        assert check_positive(3.0) == 3.0
        for bad in (0.0, -1.0, float("inf"), float("nan")):
            with pytest.raises(ValueError):
                check_positive(bad)
