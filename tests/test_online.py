"""Unit tests for the incremental DrAFTS predictor."""

import math
import time

import numpy as np
import pytest

from repro.core.drafts import DraftsConfig, DraftsPredictor
from repro.core.online import OnlineDraftsPredictor
from repro.market.synthetic import generate_trace

EPD = 288


@pytest.fixture(scope="module")
def pair():
    """A batch and an online predictor fed the same history."""
    trace = generate_trace("spiky", 0.42, n_epochs=20 * EPD, rng=8)
    config = DraftsConfig(probability=0.95, max_price=100.0)
    batch = DraftsPredictor(trace, config)
    online = OnlineDraftsPredictor(config, ladder_hi=100.0)
    online.extend(trace.times, trace.prices)
    return trace, batch, online


class TestEquivalence:
    def test_price_bounds_agree(self, pair):
        trace, batch, online = pair
        np.testing.assert_allclose(
            online.price_bound(), batch.price_bound_at(len(trace))
        )
        np.testing.assert_allclose(
            online.min_bid(), batch.min_bid_at(len(trace))
        )

    def test_bids_agree_at_ladder_granularity(self, pair):
        trace, batch, online = pair
        for hours in (0.5, 1, 2, 4):
            a = batch.bid_for(hours * 3600.0, len(trace))
            b = online.bid_for(hours * 3600.0)
            if math.isnan(a) or math.isnan(b):
                assert math.isnan(a) == math.isnan(b)
            else:
                # The two predictors lay their ladders out from different
                # anchors; agreement is within one 5% rung.
                assert b == pytest.approx(a, rel=0.06)

    def test_curves_agree_in_shape(self, pair):
        trace, batch, online = pair
        curve_b = batch.curve_at(len(trace))
        curve_o = online.curve()
        assert curve_b is not None and curve_o is not None
        assert curve_o.minimum_bid == pytest.approx(
            curve_b.minimum_bid, rel=1e-9
        )
        finite_o = [d for d in curve_o.durations if not math.isnan(d)]
        assert finite_o == sorted(finite_o)


class TestIncrementalMechanics:
    def test_monotone_time_enforced(self):
        online = OnlineDraftsPredictor()
        online.observe(0.0, 0.1)
        with pytest.raises(ValueError):
            online.observe(0.0, 0.1)
        with pytest.raises(ValueError):
            online.observe(10.0, 0.0)

    def test_exceedance_resolution(self):
        online = OnlineDraftsPredictor(
            DraftsConfig(probability=0.95), ladder_lo=0.1, ladder_hi=1.0
        )
        # Prices below every rung: everything unresolved.
        for i in range(5):
            online.observe(i * 300.0, 0.05)
        # A price at 0.5 resolves rungs up to 0.5 for all past starts.
        online.observe(5 * 300.0, 0.5)
        d = online._durations_for_rung(0)  # rung level 0.1
        np.testing.assert_allclose(
            d, [1500.0, 1200.0, 900.0, 600.0, 300.0, 0.0]
        )
        # The top rung (1.0) is still unresolved: censored at "now".
        top = online._durations_for_rung(len(online._levels) - 1)
        np.testing.assert_allclose(
            top, [1500.0, 1200.0, 900.0, 600.0, 300.0, 0.0]
        )

    def test_update_cost_is_flat(self):
        """Per-announcement cost must not grow with history length."""
        trace = generate_trace("calm", 0.42, n_epochs=8 * EPD, rng=3)
        online = OnlineDraftsPredictor(DraftsConfig(probability=0.95))
        third = len(trace) // 3

        def feed(lo, hi):
            t0 = time.perf_counter()
            for i in range(lo, hi):
                online.observe(float(trace.times[i]), float(trace.prices[i]))
            return time.perf_counter() - t0

        early = feed(0, third)
        feed(third, 2 * third)
        late = feed(2 * third, 3 * third)
        # Allow generous noise; the point is no O(n) blow-up per update.
        assert late < early * 5 + 0.5

    def test_validation(self):
        with pytest.raises(ValueError):
            OnlineDraftsPredictor(ladder_lo=1.0, ladder_hi=0.5)
        with pytest.raises(ValueError):
            OnlineDraftsPredictor(ladder_lo=0.0)
        online = OnlineDraftsPredictor()
        with pytest.raises(ValueError):
            online.bid_for(-1.0)

    def test_warmup_returns_nan(self):
        online = OnlineDraftsPredictor(DraftsConfig(probability=0.95))
        for i in range(50):
            online.observe(i * 300.0, 0.1)
        assert math.isnan(online.min_bid())
        assert math.isnan(online.bid_for(3600.0))
        assert online.curve() is None
