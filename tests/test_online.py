"""Unit tests for the incremental DrAFTS predictor.

The contract under test is *bit-identity*: at every instant, the online
predictor must answer exactly as a from-scratch batch
:class:`~repro.core.drafts.DraftsPredictor` fit of the same accumulated
history — including the curve the serving path publishes, across QBETS
change-point resets, and regardless of how the history was chunked into
deltas. That invariant is what lets the service refresh keys in
O(new announcements) without changing a single published number.
"""

import math
import time

import numpy as np
import pytest

from repro.core.drafts import DraftsConfig, DraftsPredictor
from repro.core.online import OnlineDraftsPredictor
from repro.market.synthetic import generate_trace
from repro.market.traces import PriceTrace

EPD = 288


def curves_equal(a, b) -> bool:
    """Bit-equality of curves, with nan == nan allowed per rung."""
    if a is None or b is None:
        return a is b
    if a.bids != b.bids:
        return False
    if (a.probability, a.computed_at) != (b.probability, b.computed_at):
        return False
    return all(
        x == y or (math.isnan(x) and math.isnan(y))
        for x, y in zip(a.durations, b.durations)
    )


def assert_floats_equal(a: float, b: float) -> None:
    if math.isnan(a) or math.isnan(b):
        assert math.isnan(a) and math.isnan(b)
    else:
        assert a == b


@pytest.fixture(scope="module")
def pair():
    """A batch and an online predictor fed the same history."""
    trace = generate_trace("spiky", 0.42, n_epochs=20 * EPD, rng=8)
    config = DraftsConfig(probability=0.95, max_price=100.0)
    batch = DraftsPredictor(trace, config)
    online = OnlineDraftsPredictor(config)
    online.extend(trace.times, trace.prices)
    return trace, batch, online


class TestEquivalence:
    def test_price_bounds_agree(self, pair):
        trace, batch, online = pair
        assert online.price_bound() == batch.price_bound_at(len(trace))
        assert online.min_bid() == batch.min_bid_at(len(trace))

    def test_phase1_state_is_identical(self, pair):
        trace, batch, online = pair
        snapshot = online.as_batch()
        np.testing.assert_array_equal(
            snapshot.changepoints, batch.changepoints
        )
        np.testing.assert_array_equal(
            snapshot._bounds, batch._bounds
        )
        np.testing.assert_array_equal(
            snapshot._ladder.levels, batch._ladder.levels
        )

    def test_bids_agree_exactly(self, pair):
        trace, batch, online = pair
        for hours in (0.0, 0.5, 1, 2, 4, 24, 24 * 14):
            assert_floats_equal(
                online.bid_for(hours * 3600.0),
                batch.bid_for(hours * 3600.0, len(trace)),
            )

    def test_duration_bounds_agree_exactly(self, pair):
        trace, batch, online = pair
        min_bid = batch.min_bid_at(len(trace))
        for bid in (min_bid, min_bid * 1.5, min_bid * 4.0, 1e9):
            assert_floats_equal(
                online.duration_bound(bid),
                batch.duration_bound(bid, len(trace)),
            )

    def test_curves_bit_identical(self, pair):
        trace, batch, online = pair
        curve_b = batch.curve_at(len(trace), "it", "z")
        curve_o = online.curve("it", "z")
        assert curve_b is not None
        assert curves_equal(curve_o, curve_b)

    def test_historical_curves_bit_identical(self, pair):
        """curve_at at past instants also flows through batch code."""
        trace, batch, online = pair
        for t_idx in (len(trace) // 2, len(trace) - 1):
            assert curves_equal(
                online.curve_at(t_idx), batch.curve_at(t_idx)
            )


class TestDeltaFeeding:
    """Equivalence must survive any chunking of the announcement stream —
    the serving conditions: deltas of any size, zero-announcement deltas,
    deltas spanning a QBETS change point, queries between deltas."""

    def _batch_for(self, trace, config, n):
        sub = PriceTrace(trace.times[:n].copy(), trace.prices[:n].copy())
        return DraftsPredictor(sub, config)

    def test_chunked_equals_batch_at_every_boundary(self):
        trace = generate_trace("spiky", 0.42, n_epochs=12 * EPD, rng=11)
        config = DraftsConfig(probability=0.95)
        online = OnlineDraftsPredictor(config)
        fed = 0
        for size in (900, 1, 0, 700, 13, 800, 42):
            online.extend(
                trace.times[fed : fed + size], trace.prices[fed : fed + size]
            )
            fed += size
            batch = self._batch_for(trace, config, fed)
            assert curves_equal(
                online.curve(), batch.curve_at(fed)
            ), f"diverged after {fed} announcements"
        assert fed <= len(trace)

    def test_delta_spanning_changepoint(self):
        """A regime shift mid-delta must reset QBETS identically."""
        trace = generate_trace("spiky", 0.42, n_epochs=12 * EPD, rng=8)
        config = DraftsConfig(probability=0.95)
        batch = DraftsPredictor(trace, config)
        cps = batch.changepoints
        assert len(cps) > 0, "fixture must trigger a reset"
        split = int(cps[0]) - 50  # the next delta spans the change point

        online = OnlineDraftsPredictor(config)
        online.extend(trace.times[:split], trace.prices[:split])
        _ = online.curve()  # force mid-stream ladder + snapshot state
        online.extend(trace.times[split:], trace.prices[split:])

        snapshot = online.as_batch()
        np.testing.assert_array_equal(snapshot.changepoints, cps)
        assert curves_equal(online.curve(), batch.curve_at(len(trace)))

    def test_zero_announcement_delta_is_noop(self, pair):
        trace, batch, online = pair
        before = online.curve()
        online.extend(np.empty(0), np.empty(0))
        online.extend(PriceTrace(trace.times, trace.prices).times[:0], [])
        assert online.n == len(trace)
        assert curves_equal(online.curve(), before)

    def test_extend_accepts_a_price_trace(self):
        trace = generate_trace("calm", 0.42, n_epochs=6 * EPD, rng=2)
        config = DraftsConfig(probability=0.95)
        a = OnlineDraftsPredictor(config)
        a.extend(trace)
        b = OnlineDraftsPredictor(config)
        b.extend(trace.times, trace.prices)
        assert curves_equal(a.curve(), b.curve())
        history = a.history()
        np.testing.assert_array_equal(history.times, trace.times)
        np.testing.assert_array_equal(history.prices, trace.prices)


class TestSnapshotRestore:
    """``to_snapshot``/``from_snapshot`` must restore a predictor that is
    indistinguishable from one that never stopped — the serving tier's
    crash-safety contract. The ladder and cached batch snapshot are *not*
    serialized; they are pure functions of (config, history) and must
    rebuild bit-identically on first use after a restore."""

    def test_restored_predictor_answers_identically(self, pair):
        trace, batch, online = pair
        restored = OnlineDraftsPredictor.from_snapshot(online.to_snapshot())
        assert restored.n == online.n
        assert_floats_equal(restored.price_bound(), online.price_bound())
        assert_floats_equal(restored.min_bid(), online.min_bid())
        for hours in (0.5, 2, 24, 24 * 14):
            assert_floats_equal(
                restored.bid_for(hours * 3600.0),
                online.bid_for(hours * 3600.0),
            )
        assert curves_equal(
            restored.curve("it", "z"), online.curve("it", "z")
        )

    def test_roundtrip_through_disk_format_is_bit_exact(self, pair):
        """The snapshot survives the framed on-disk encoding (base64 raw
        float bytes), not just an in-memory dict copy."""
        from repro.service.persistence import dumps_snapshot, loads_snapshot

        trace, batch, online = pair
        thawed = loads_snapshot(
            dumps_snapshot(online.to_snapshot(), "key"), "key"
        )
        restored = OnlineDraftsPredictor.from_snapshot(thawed)
        assert curves_equal(
            restored.curve("it", "z"), online.curve("it", "z")
        )
        np.testing.assert_array_equal(
            restored.as_batch()._bounds, online.as_batch()._bounds
        )

    def test_restored_tracks_survivor_after_more_deltas(self):
        """Snapshot at half-history, then feed both the survivor and the
        restored predictor the identical remainder: every published answer
        must stay bit-identical, across QBETS change points included."""
        trace = generate_trace("spiky", 0.42, n_epochs=16 * EPD, rng=21)
        config = DraftsConfig(probability=0.95, max_price=100.0)
        half = len(trace) // 2
        survivor = OnlineDraftsPredictor(config)
        survivor.extend(trace.times[:half], trace.prices[:half])
        restored = OnlineDraftsPredictor.from_snapshot(survivor.to_snapshot())
        for lo in range(half, len(trace), 157):
            hi = min(lo + 157, len(trace))
            survivor.extend(trace.times[lo:hi], trace.prices[lo:hi])
            restored.extend(trace.times[lo:hi], trace.prices[lo:hi])
            assert_floats_equal(
                restored.price_bound(), survivor.price_bound()
            )
            assert curves_equal(restored.curve(), survivor.curve())
        np.testing.assert_array_equal(
            restored.as_batch().changepoints,
            survivor.as_batch().changepoints,
        )

    def test_snapshot_does_not_alias_live_state(self):
        """Feeding the original after snapshotting must not leak into a
        predictor later restored from the old snapshot."""
        trace = generate_trace("calm", 0.42, n_epochs=8 * EPD, rng=5)
        half = len(trace) // 2
        online = OnlineDraftsPredictor(DraftsConfig(probability=0.95))
        online.extend(trace.times[:half], trace.prices[:half])
        frozen = online.to_snapshot()
        bound_then = online.price_bound()
        online.extend(trace.times[half:], trace.prices[half:])
        restored = OnlineDraftsPredictor.from_snapshot(frozen)
        assert restored.n == half
        assert_floats_equal(restored.price_bound(), bound_then)

    def test_damaged_snapshot_is_rejected(self, pair):
        trace, batch, online = pair
        snapshot = online.to_snapshot()
        clipped = dict(snapshot, times=snapshot["times"][:-5])
        with pytest.raises(ValueError):
            OnlineDraftsPredictor.from_snapshot(clipped)


class TestIncrementalMechanics:
    def test_monotone_time_enforced(self):
        online = OnlineDraftsPredictor()
        online.observe(0.0, 0.1)
        with pytest.raises(ValueError):
            online.observe(0.0, 0.1)
        with pytest.raises(ValueError):
            online.observe(10.0, 0.0)

    def test_update_cost_is_flat(self):
        """Per-announcement cost must not grow with history length."""
        trace = generate_trace("calm", 0.42, n_epochs=8 * EPD, rng=3)
        online = OnlineDraftsPredictor(DraftsConfig(probability=0.95))
        third = len(trace) // 3

        def feed(lo, hi):
            t0 = time.perf_counter()
            for i in range(lo, hi):
                online.observe(float(trace.times[i]), float(trace.prices[i]))
            return time.perf_counter() - t0

        early = feed(0, third)
        feed(third, 2 * third)
        late = feed(2 * third, 3 * third)
        # Allow generous noise; the point is no O(n) blow-up per update.
        assert late < early * 5 + 0.5

    def test_snapshot_is_cached_until_new_data(self, pair):
        trace, batch, online = pair
        assert online.as_batch() is online.as_batch()

    def test_validation(self):
        online = OnlineDraftsPredictor()
        with pytest.raises(ValueError):
            online.bid_for(-1.0)
        assert online.curve() is None
        assert online.history() is None
        assert math.isnan(online.duration_bound(0.5))
        assert math.isnan(online.last_time)

    def test_warmup_returns_nan(self):
        online = OnlineDraftsPredictor(DraftsConfig(probability=0.95))
        for i in range(50):
            online.observe(i * 300.0, 0.1)
        assert math.isnan(online.min_bid())
        assert math.isnan(online.bid_for(3600.0))
        assert online.curve() is None
        # ... and the batch predictor agrees on the same short history.
        batch = DraftsPredictor(
            PriceTrace(300.0 * np.arange(50), np.full(50, 0.1)),
            online.config,
        )
        assert batch.curve_at(50) is None
