"""Tests for the fault-injection layer and the chaos harness.

The harness is itself test infrastructure, so these tests pin down what it
must guarantee to be trusted: faults really are injected, runs are
deterministic under a seed, torn snapshots really are unreadable, and the
four serving invariants hold on a representative faulted run (with the
mid-run snapshot/restore round-trip included).
"""

import math

import pytest

from repro.serving.chaos import (
    ChaosConfig,
    FaultConfig,
    FaultyApi,
    FaultyCompute,
    run_chaos,
    tear_snapshot,
    assert_chaos_invariants,
)
from repro.serving.clock import ManualClock


class TestFaultInjection:
    def test_faulty_api_injects_on_schedule(self, small_universe):
        from repro.cloud.api import EC2Api

        clock = ManualClock()
        api = FaultyApi(
            EC2Api(small_universe),
            FaultConfig(error_rate=0.5, spike_rate=0.5, spike_seconds=3.0, seed=1),
            clock=clock,
        )
        combo = small_universe.combo("c4.large", "us-east-1b")
        now = small_universe.trace(combo).start + 45 * 86400.0
        outcomes = []
        for _ in range(40):
            try:
                api.describe_spot_price_history("c4.large", "us-east-1b", now)
                outcomes.append(True)
            except RuntimeError as exc:
                assert "chaos" in str(exc)
                outcomes.append(False)
        assert api.injected_errors > 0 and api.injected_spikes > 0
        assert any(outcomes) and not all(outcomes)
        # Spikes pass through the injected clock (deadlines/breakers see them).
        assert clock.now() == api.injected_spikes * 3.0
        # The attempt log records every call with its outcome.
        log = api.drain_attempts()
        assert [a["ok"] for a in log] == outcomes
        assert api.attempts == []  # drained

    def test_faulty_api_same_seed_same_schedule(self, small_universe):
        from repro.cloud.api import EC2Api

        def schedule(seed):
            api = FaultyApi(
                EC2Api(small_universe),
                FaultConfig(error_rate=0.3, seed=seed),
                clock=ManualClock(),
            )
            combo = small_universe.combo("c4.large", "us-east-1b")
            now = small_universe.trace(combo).start + 45 * 86400.0
            outcomes = []
            for _ in range(30):
                try:
                    api.describe_spot_price_history(
                        "c4.large", "us-east-1b", now
                    )
                    outcomes.append(True)
                except RuntimeError:
                    outcomes.append(False)
            return outcomes

        assert schedule(5) == schedule(5)
        assert schedule(5) != schedule(6)

    def test_faulty_api_disabled_is_transparent(self, small_universe):
        from repro.cloud.api import EC2Api

        api = FaultyApi(
            EC2Api(small_universe),
            FaultConfig(error_rate=1.0),
            clock=ManualClock(),
        )
        api.enabled = False
        combo = small_universe.combo("c4.large", "us-east-1b")
        now = small_universe.trace(combo).start + 45 * 86400.0
        trace = api.describe_spot_price_history("c4.large", "us-east-1b", now)
        assert len(trace.prices) > 0
        assert api.injected_errors == 0
        # Non-intercepted methods delegate untouched.
        assert api.ondemand_price("c4.large", "us-east-1") > 0

    def test_faulty_compute_wraps_any_callable(self):
        compute = FaultyCompute(
            lambda key, now: ("curve", key, now),
            FaultConfig(error_rate=0.5, seed=3),
        )
        results = []
        for i in range(30):
            try:
                results.append(compute(("t", "z", 0.95), float(i)))
            except RuntimeError:
                results.append(None)
        assert compute.injected_errors > 0
        assert any(r is not None for r in results)
        assert ("curve", ("t", "z", 0.95), 0.0) in results

    def test_fault_config_validation(self):
        with pytest.raises(ValueError):
            FaultConfig(error_rate=1.5)
        with pytest.raises(ValueError):
            FaultConfig(spike_rate=-0.1)
        with pytest.raises(ValueError):
            FaultConfig(spike_seconds=-1.0)


class TestTearSnapshot:
    @pytest.mark.parametrize("mode", ["truncate", "flip", "empty"])
    def test_all_tear_modes_are_detected_at_read(self, tmp_path, mode):
        import numpy as np

        from repro.service.persistence import (
            SnapshotError,
            read_snapshot,
            write_snapshot,
        )

        path = tmp_path / "victim.snap"
        write_snapshot(
            path, {"x": np.linspace(0, 1, 512), "n": 7}, kind="key"
        )
        tear_snapshot(path, mode=mode, seed=4)
        with pytest.raises(SnapshotError):
            read_snapshot(path, kind="key")

    def test_unknown_mode_rejected(self, tmp_path):
        path = tmp_path / "victim.snap"
        path.write_bytes(b"anything")
        with pytest.raises(ValueError):
            tear_snapshot(path, mode="arson")


@pytest.fixture(scope="module")
def chaos_report():
    """One faulted run with the mid-run snapshot/restore round-trip."""
    return run_chaos(
        ChaosConfig(
            scale="test",
            n_keys=3,
            n_requests=120,
            error_rate=0.15,
            seed=7,
            breaker_threshold=2,
            breaker_cooldown_seconds=10.0,
            invalidate_every=15,
            restart=True,
        )
    )


class TestChaosHarness:
    def test_invariants_hold_under_faults(self, chaos_report):
        assert_chaos_invariants(chaos_report)
        assert chaos_report["ok"]
        inv = chaos_report["invariants"]
        assert inv["conservation"]["ok"]
        assert inv["stale_never_error"]["ok"]
        assert inv["breaker_sequencing"]["ok"]
        assert inv["snapshot_restore"]["ok"]

    def test_faults_were_actually_injected(self, chaos_report):
        """A chaos run that injects nothing proves nothing."""
        assert chaos_report["injected"]["errors"] > 0
        assert chaos_report["counters"]["serving.refresh_failures"] > 0
        assert any(
            int(status) >= 500 for status in chaos_report["statuses"]
        ), chaos_report["statuses"]

    def test_restart_round_trip_recorded(self, chaos_report):
        detail = chaos_report["invariants"]["snapshot_restore"]["detail"]
        # One file was deliberately torn; the rest restored bit-identically.
        assert detail["torn_file"]
        assert detail["skipped"] == 1
        assert detail["loaded"] == detail["saved"] - 1
        assert detail["curves_identical"]

    def test_same_seed_same_run(self):
        config = ChaosConfig(
            scale="test", n_keys=2, n_requests=40, error_rate=0.2,
            seed=11, breaker_threshold=2, restart=False,
        )

        def fingerprint():
            report = run_chaos(config)
            return report["statuses"], report["counters"], report["injected"]

        assert fingerprint() == fingerprint()

    def test_assert_helper_raises_with_violation_details(self):
        bad = {
            "ok": False,
            "invariants": {
                "conservation": {"ok": False, "requests": 3, "served": 2},
                "stale_never_error": {"ok": True},
            },
        }
        with pytest.raises(AssertionError, match="conservation"):
            assert_chaos_invariants(bad)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ChaosConfig(n_requests=0)
        with pytest.raises(ValueError):
            ChaosConfig(error_rate=2.0)
        with pytest.raises(ValueError):
            ChaosConfig(invalidate_every=0)
