"""Unit tests for the Spot-instance lifecycle."""

import numpy as np
import pytest

from repro.cloud.spot import SpotTier, TerminationCause
from repro.market.traces import PriceTrace


@pytest.fixture()
def tier():
    # 0.10 for an hour, then a one-hour plateau at 0.50, then 0.10 again.
    trace = PriceTrace(
        times=np.array([0.0, 3600.0, 7200.0]),
        prices=np.array([0.10, 0.50, 0.10]),
    )
    return SpotTier(trace)


class TestAdmission:
    def test_strictly_above_market(self, tier):
        assert tier.would_admit(0.0, 0.11)
        assert not tier.would_admit(0.0, 0.10)  # equality is not enough
        assert not tier.would_admit(0.0, 0.05)

    def test_validation(self, tier):
        with pytest.raises(ValueError):
            tier.would_admit(0.0, 0.0)


class TestTermination:
    def test_termination_time(self, tier):
        assert tier.termination_time(0.0, 0.30) == 3600.0
        assert tier.termination_time(0.0, 0.50) == 3600.0  # equality kills
        assert np.isinf(tier.termination_time(0.0, 0.51))

    def test_run_survives_short_duration(self, tier):
        run = tier.run(0.0, 3300.0, 0.2)
        assert run.cause is TerminationCause.USER
        assert run.completed
        assert run.ran_seconds == 3300.0
        assert run.charge.hours == 1
        assert run.charge.cost == pytest.approx(0.10)

    def test_run_killed_by_plateau(self, tier):
        run = tier.run(0.0, 3 * 3600.0, 0.2)
        assert run.cause is TerminationCause.PRICE
        assert not run.completed
        assert run.ran_seconds == pytest.approx(3600.0)

    def test_run_above_plateau_survives(self, tier):
        run = tier.run(0.0, 3 * 3600.0, 0.51)
        assert run.cause is TerminationCause.USER
        # Charged the market price at each hour start, not the bid.
        assert run.charge.hourly_prices == (0.10, 0.50, 0.10)

    def test_rejected_run(self, tier):
        run = tier.run(3700.0, 3600.0, 0.3)  # market is 0.50 at request
        assert run.cause is TerminationCause.REJECTED
        assert run.ran_seconds == 0.0
        assert run.charge.cost == 0.0
        assert run.risk == 0.0

    def test_risk_uses_bid(self, tier):
        run = tier.run(0.0, 3300.0, 0.2)
        assert run.risk == pytest.approx(0.2)
        assert run.risk >= run.charge.cost

    def test_validation(self, tier):
        with pytest.raises(ValueError):
            tier.run(0.0, 0.0, 0.2)


class TestPaperSemantics:
    def test_one_tick_premium_is_safe(self):
        """A bid one tick above a flat price is never terminated (§3.2)."""
        trace = PriceTrace(
            times=np.arange(100, dtype=float) * 300.0,
            prices=np.full(100, 0.1),
        )
        tier = SpotTier(trace)
        run = tier.run(0.0, 8 * 3600.0, 0.1001)
        assert run.cause is TerminationCause.USER

    def test_bid_equal_to_price_unsafe(self):
        trace = PriceTrace(
            times=np.arange(10, dtype=float) * 300.0,
            prices=np.full(10, 0.1),
        )
        tier = SpotTier(trace)
        run = tier.run(0.0, 600.0, 0.1)
        assert run.cause is TerminationCause.REJECTED
