"""Unit tests for the duration-until-exceedance machinery."""

import numpy as np
import pytest

from repro.core.durations import (
    DurationLadder,
    censored_durations,
    next_exceed_indices,
)


def _naive_next_exceed(prices, threshold):
    n = len(prices)
    out = []
    for s in range(n):
        j = s
        while j < n and prices[j] < threshold:
            j += 1
        out.append(j)
    return np.array(out)


class TestNextExceed:
    def test_matches_naive(self, rng):
        prices = rng.uniform(0.0, 1.0, size=300)
        for threshold in (0.1, 0.5, 0.9, 1.5):
            np.testing.assert_array_equal(
                next_exceed_indices(prices, threshold),
                _naive_next_exceed(prices, threshold),
            )

    def test_immediate_exceedance(self):
        prices = np.array([2.0, 0.5, 0.5])
        out = next_exceed_indices(prices, 1.0)
        assert out[0] == 0
        assert out[1] == 3 and out[2] == 3  # censored at trace end

    def test_equality_counts_as_exceeded(self):
        prices = np.array([0.5, 1.0, 0.5])
        assert next_exceed_indices(prices, 1.0)[0] == 1


class TestCensoredDurations:
    def test_values_and_censoring(self):
        times = np.arange(5, dtype=float) * 300.0
        prices = np.array([0.1, 0.1, 1.0, 0.1, 0.1])
        exceed = next_exceed_indices(prices, 0.5)
        d = censored_durations(times, exceed, t_idx=4)
        # starts 0,1 terminate at index 2; starts 2 at itself; start 3 is
        # censored at t_idx=4.
        np.testing.assert_allclose(d, [600.0, 300.0, 0.0, 300.0])

    def test_t_idx_zero_empty(self):
        times = np.arange(3, dtype=float)
        exceed = np.array([3, 3, 3])
        assert censored_durations(times, exceed, 0).size == 0

    def test_now_prediction_censors_at_last_timestamp(self):
        times = np.arange(4, dtype=float) * 300.0
        prices = np.full(4, 0.1)
        exceed = next_exceed_indices(prices, 0.5)  # never exceeded
        d = censored_durations(times, exceed, t_idx=4)
        np.testing.assert_allclose(d, [900.0, 600.0, 300.0, 0.0])

    def test_bounds_checked(self):
        times = np.arange(3, dtype=float)
        with pytest.raises(IndexError):
            censored_durations(times, np.zeros(3, dtype=int), 5)


class TestDurationLadder:
    @pytest.fixture()
    def ladder(self, rng):
        times = np.arange(400, dtype=float) * 300.0
        prices = rng.uniform(0.1, 1.0, size=400)
        levels = np.array([0.25, 0.5, 0.75, 1.5])
        return DurationLadder(times, prices, levels), prices

    def test_validation(self):
        times = np.arange(3, dtype=float)
        prices = np.ones(3)
        with pytest.raises(ValueError):
            DurationLadder(times, prices, np.array([1.0, 1.0]))
        with pytest.raises(ValueError):
            DurationLadder(times, prices, np.array([]))
        with pytest.raises(ValueError):
            DurationLadder(times, np.ones(2), np.array([1.0]))

    def test_rung_lookup(self, ladder):
        lad, _ = ladder
        assert lad.rung_at_least(0.3) == 1
        assert lad.rung_at_least(0.5) == 1
        assert lad.rung_at_least(0.01) == 0
        with pytest.raises(ValueError):
            lad.rung_at_least(2.0)
        assert lad.rung_at_most(0.3) == 0
        assert lad.rung_at_most(0.2) == -1

    def test_durations_monotone_in_level(self, ladder):
        lad, _ = ladder
        t_idx = 350
        d_low = lad.durations_at(0, t_idx)
        d_high = lad.durations_at(2, t_idx)
        assert np.all(d_high >= d_low)

    def test_survival_time_ground_truth(self, ladder):
        lad, prices = ladder
        t_idx = 100
        s = lad.survival_time(3, t_idx)  # level 1.5 > all prices
        assert np.isinf(s)
        s0 = lad.survival_time(0, t_idx)  # level 0.25, crossed quickly
        assert np.isfinite(s0)
        first = next(
            j for j in range(t_idx, len(prices)) if prices[j] >= 0.25
        )
        assert s0 == pytest.approx((first - t_idx) * 300.0)

    def test_levels_read_only(self, ladder):
        lad, _ = ladder
        with pytest.raises(ValueError):
            lad.levels[0] = 99.0
