"""Unit tests for the binomial change-point detectors."""

import numpy as np
import pytest
from scipy import stats

from repro.core.changepoint import (
    BinomialRunDetector,
    ChangePointDetector,
    ChangeSignal,
)


class TestBinomialRunDetector:
    def test_critical_count_is_rejection_boundary(self):
        det = BinomialRunDetector(p_hit=0.1, window=50, alpha=0.01)
        h = det.critical_hits
        assert stats.binom.sf(h - 1, 50, 0.1) < 0.01
        assert stats.binom.sf(h - 2, 50, 0.1) >= 0.01

    def test_no_signal_before_window_full(self):
        det = BinomialRunDetector(p_hit=0.1, window=20, alpha=0.05)
        # All hits, but the window has not filled: never signal.
        assert not any(det.observe(True) for _ in range(19))

    def test_fires_on_shifted_stream(self, rng):
        det = BinomialRunDetector(p_hit=0.05, window=40, alpha=0.01)
        for _ in range(40):
            det.observe(bool(rng.random() < 0.05))
        fired = False
        for _ in range(80):
            if det.observe(bool(rng.random() < 0.6)):
                fired = True
                break
        assert fired

    def test_rarely_fires_under_null(self, rng):
        det = BinomialRunDetector(p_hit=0.1, window=40, alpha=0.001)
        fires = sum(det.observe(bool(rng.random() < 0.1)) for _ in range(4000))
        # Expected false-positive rate is ~0.1% per step (with dependence
        # across overlapping windows); 4000 steps should fire only a few
        # times at most.
        assert fires <= 20

    def test_sliding_window_forgets(self):
        det = BinomialRunDetector(p_hit=0.1, window=10, alpha=0.01)
        h = det.critical_hits
        for _ in range(h - 1):
            det.observe(True)
        # Flush the window with misses: the old hits must roll out.
        for _ in range(10):
            assert not det.observe(False)

    def test_reset(self):
        det = BinomialRunDetector(p_hit=0.1, window=10, alpha=0.05)
        for _ in range(9):
            det.observe(True)
        det.reset()
        assert not det.observe(True)  # window no longer full

    def test_validation(self):
        with pytest.raises(ValueError):
            BinomialRunDetector(p_hit=0.0, window=10, alpha=0.01)
        with pytest.raises(ValueError):
            BinomialRunDetector(p_hit=0.1, window=0, alpha=0.01)


class TestChangePointDetector:
    def test_up_signal(self, rng):
        det = ChangePointDetector(q=0.95, window=30, alpha=0.01)
        signal = ChangeSignal.NONE
        for _ in range(200):
            signal = det.observe(exceeded_bound=True, below_low=False)
            if signal is not ChangeSignal.NONE:
                break
        assert signal is ChangeSignal.UP

    def test_down_signal(self):
        det = ChangePointDetector(q=0.95, window=30, alpha=0.01)
        signal = ChangeSignal.NONE
        for _ in range(200):
            signal = det.observe(exceeded_bound=False, below_low=True)
            if signal is not ChangeSignal.NONE:
                break
        assert signal is ChangeSignal.DOWN

    def test_up_takes_precedence(self):
        det = ChangePointDetector(q=0.95, window=10, alpha=0.05)
        signal = ChangeSignal.NONE
        for _ in range(100):
            signal = det.observe(exceeded_bound=True, below_low=True)
            if signal is not ChangeSignal.NONE:
                break
        assert signal is ChangeSignal.UP

    def test_resets_after_firing(self):
        det = ChangePointDetector(q=0.95, window=10, alpha=0.05)
        for _ in range(100):
            if det.observe(True, False) is not ChangeSignal.NONE:
                break
        # Immediately after firing the windows are empty: no instant re-fire.
        assert det.observe(True, False) is ChangeSignal.NONE

    def test_quiet_under_stationary_noise(self, rng):
        det = ChangePointDetector(q=0.975, window=48, alpha=0.001)
        fires = 0
        for _ in range(2000):
            exceeded = bool(rng.random() < 0.01)
            below = bool(rng.random() < 0.25)
            if det.observe(exceeded, below) is not ChangeSignal.NONE:
                fires += 1
        assert fires <= 3
