"""Unit tests for the serving metrics registry."""

import math
import threading

import pytest

from repro.serving.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestCounter:
    def test_monotonic(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_thread_safety(self):
        counter = Counter("c")

        def bump():
            for _ in range(10_000):
                counter.inc()

        threads = [threading.Thread(target=bump) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == 80_000


class TestGauge:
    def test_set_and_add(self):
        gauge = Gauge("g")
        gauge.set(3.0)
        assert gauge.add(-1.5) == 1.5
        assert gauge.value == 1.5


class TestHistogram:
    def test_bucketing(self):
        hist = Histogram("h", bounds=(0.001, 0.01, 0.1))
        for value in (0.0005, 0.005, 0.005, 0.05, 5.0):
            hist.observe(value)
        data = hist.to_dict()
        counts = [bucket["count"] for bucket in data["buckets"]]
        assert counts == [1, 2, 1, 1]  # last is the overflow bucket
        assert data["count"] == 5
        assert data["sum"] == pytest.approx(5.0605)

    def test_quantile_interpolates_within_bucket(self):
        hist = Histogram("h", bounds=(0.001, 0.01, 0.1))
        for _ in range(99):
            hist.observe(0.0005)
        hist.observe(0.05)
        # Rank 50 of 100 lands mid-way through the first bucket [0, 0.001].
        assert hist.quantile(0.5) == pytest.approx(0.001 * 50 / 99)
        # q=1.0 is the upper edge of the last occupied bucket.
        assert hist.quantile(1.0) == 0.1

    def test_quantile_uniform_fill_is_linear(self):
        hist = Histogram("h", bounds=(10.0,))
        for value in range(10):
            hist.observe(value + 0.5)
        assert hist.quantile(0.5) == pytest.approx(5.0)
        assert hist.quantile(0.999) == pytest.approx(9.99)

    def test_to_dict_reports_three_quantiles(self):
        hist = Histogram("h", bounds=(1.0, 2.0))
        for _ in range(998):
            hist.observe(0.5)
        for _ in range(3):
            hist.observe(1.5)
        data = hist.to_dict()
        assert data["p50"] < 1.0
        assert data["p99"] < 1.0
        assert 1.0 < data["p999"] <= 2.0

    def test_overflow_quantile_is_highest_finite_bound(self):
        """A rank in the +Inf bucket answers the last finite bound (the
        Prometheus convention) — inf would poison the /metrics JSON."""
        hist = Histogram("h", bounds=(1.0, 2.0))
        hist.observe(5.0)
        for q in (0.0, 0.5, 0.99, 1.0):
            assert hist.quantile(q) == 2.0

    def test_empty_quantile_is_defined(self):
        """An empty histogram answers 0.0 on every q, never NaN — to_dict
        must stay JSON-valid before the first observation."""
        hist = Histogram("h", bounds=(1.0,))
        for q in (0.0, 0.5, 1.0):
            assert hist.quantile(q) == 0.0
        data = hist.to_dict()
        assert data["p50"] == data["p99"] == data["p999"] == 0.0
        assert not any(math.isnan(v) for v in (data["p50"], data["sum"]))

    def test_single_sample_quantiles_are_defined(self):
        """One sample: every q lands in its bucket, interpolated between
        the bucket edges — defined for q in {0, 0.5, 1}."""
        hist = Histogram("h", bounds=(1.0, 2.0))
        hist.observe(1.5)
        assert hist.quantile(0.0) == pytest.approx(1.0)
        assert hist.quantile(0.5) == pytest.approx(1.5)
        assert hist.quantile(1.0) == pytest.approx(2.0)
        data = hist.to_dict()
        assert data["p50"] == pytest.approx(1.5)
        assert 1.0 <= data["p999"] <= 2.0

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            Histogram("h", bounds=())
        with pytest.raises(ValueError):
            Histogram("h", bounds=(2.0, 1.0))


class TestRegistry:
    def test_lazy_creation_and_identity(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("b") is registry.gauge("b")
        assert registry.histogram("c") is registry.histogram("c")

    def test_snapshot_is_json_ready(self):
        import json

        registry = MetricsRegistry()
        registry.counter("requests").inc(3)
        registry.gauge("depth").set(2.0)
        registry.histogram("lat", bounds=(0.1, 1.0)).observe(0.5)
        snap = registry.snapshot()
        assert snap["counters"] == {"requests": 3}
        assert snap["gauges"] == {"depth": 2.0}
        assert snap["histograms"]["lat"]["count"] == 1
        json.dumps(snap)  # must not raise
