"""Unit tests for the EC2 billing rules."""

import numpy as np
import pytest

from repro.cloud.billing import charge_ondemand, charge_spot_run, risked_cost
from repro.market.traces import PriceTrace
from repro.util.timeutils import billable_hours, hour_starts


class TestBillableHours:
    def test_round_up(self):
        assert billable_hours(1.0) == 1
        assert billable_hours(3600.0) == 1
        assert billable_hours(3601.0) == 2
        assert billable_hours(2 * 3600.0) == 2

    def test_paper_3300s_is_one_hour(self):
        """§4.2 chose 3300 s precisely to stay inside one billable hour."""
        assert billable_hours(3300.0) == 1

    def test_zero_duration_charged_one_hour(self):
        assert billable_hours(0.0) == 1

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            billable_hours(-1.0)

    def test_hour_starts(self):
        starts = hour_starts(100.0, 2.5 * 3600.0)
        np.testing.assert_allclose(starts, [100.0, 3700.0, 7300.0])


class TestOnDemandCharge:
    def test_fixed_price_roundup(self):
        charge = charge_ondemand(0.1, 90 * 60.0)
        assert charge.hours == 2
        assert charge.cost == pytest.approx(0.2)
        assert charge.hourly_prices == (0.1, 0.1)

    def test_validation(self):
        with pytest.raises(ValueError):
            charge_ondemand(0.0, 100.0)


class TestSpotCharge:
    @pytest.fixture()
    def trace(self):
        # Price changes at the top of each hour: 0.10, 0.30, 0.20.
        return PriceTrace(
            times=np.array([0.0, 3600.0, 7200.0]),
            prices=np.array([0.10, 0.30, 0.20]),
        )

    def test_price_at_each_hour_start(self, trace):
        charge = charge_spot_run(trace, 0.0, 2.5 * 3600.0)
        assert charge.hours == 3
        assert charge.hourly_prices == (0.10, 0.30, 0.20)
        assert charge.cost == pytest.approx(0.60)

    def test_mid_epoch_start(self, trace):
        # Start mid-way: hour starts at 1800 (price 0.10) and 5400 (0.30).
        charge = charge_spot_run(trace, 1800.0, 7000.0)
        assert charge.hourly_prices == (0.10, 0.30)

    def test_runs_beyond_trace_use_last_price(self, trace):
        charge = charge_spot_run(trace, 7000.0, 3 * 3600.0)
        assert all(p in (0.30, 0.20) for p in charge.hourly_prices)

    def test_negative_duration_rejected(self, trace):
        with pytest.raises(ValueError):
            charge_spot_run(trace, 0.0, -5.0)


class TestRiskedCost:
    def test_bid_times_hours(self):
        assert risked_cost(0.5, 3 * 3600.0) == pytest.approx(1.5)
        assert risked_cost(0.5, 3300.0) == pytest.approx(0.5)

    def test_risk_at_least_actual_cost(self, rng):
        """The worst case can never be cheaper than what was charged."""
        times = np.arange(50, dtype=float) * 3600.0
        prices = rng.uniform(0.01, 0.09, size=50)
        trace = PriceTrace(times, prices)
        for _ in range(20):
            start = float(rng.uniform(0, 40 * 3600))
            duration = float(rng.uniform(60, 8 * 3600))
            bid = 0.10  # above every price in the trace
            actual = charge_spot_run(trace, start, duration).cost
            assert risked_cost(bid, duration) >= actual

    def test_validation(self):
        with pytest.raises(ValueError):
            risked_cost(0.0, 100.0)
