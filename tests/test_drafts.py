"""Unit tests for the DrAFTS two-phase predictor."""

import math

import numpy as np
import pytest

from repro.core.drafts import PRICE_TICK, DraftsConfig, DraftsPredictor
from repro.market.synthetic import generate_trace


class TestConfig:
    def test_split_arithmetic(self):
        cfg = DraftsConfig(probability=0.95)
        assert cfg.price_quantile == pytest.approx(math.sqrt(0.95))
        assert cfg.duration_level == pytest.approx(math.sqrt(0.95))
        assert cfg.duration_quantile == pytest.approx(1 - math.sqrt(0.95))
        # The two phases compose back to p.
        assert cfg.price_quantile * cfg.duration_level == pytest.approx(0.95)

    def test_alpha_split(self):
        cfg = DraftsConfig(probability=0.9, alpha=0.7)
        assert cfg.price_quantile == pytest.approx(0.9**0.7)
        assert cfg.duration_level == pytest.approx(0.9**0.3)

    def test_validation(self):
        with pytest.raises(ValueError):
            DraftsConfig(probability=1.5)
        with pytest.raises(ValueError):
            DraftsConfig(alpha=1.0)
        with pytest.raises(ValueError):
            DraftsConfig(premium=-0.1)

    def test_with_override(self):
        cfg = DraftsConfig().with_(changepoint=False)
        assert cfg.changepoint is False


class TestPredictor:
    def test_min_bid_exceeds_current_price(self, spiky_predictor):
        """The tick premium guarantees the bid admits an instance (§3.2)."""
        trace = spiky_predictor.trace
        misses = 0
        for t_idx in range(2000, len(trace), 481):
            bid = spiky_predictor.min_bid_at(t_idx)
            if math.isnan(bid):
                continue
            bound = spiky_predictor.price_bound_at(t_idx)
            assert bid == pytest.approx(bound + PRICE_TICK)
            # The bound is (at least) the running price level most of the
            # time; count the rare race where a fresh jump outruns it.
            misses += bid <= trace.prices[t_idx]
        assert misses <= 2

    def test_bid_monotone_in_duration(self, spiky_predictor):
        t_idx = len(spiky_predictor.trace) - 1
        bids = [
            spiky_predictor.bid_for(h * 3600.0, t_idx) for h in (0.5, 1, 2, 4)
        ]
        finite = [b for b in bids if not math.isnan(b)]
        assert finite == sorted(finite)
        # Once nan (unachievable), longer durations stay nan.
        seen_nan = False
        for b in bids:
            if math.isnan(b):
                seen_nan = True
            elif seen_nan:
                pytest.fail("finite bid after nan: not monotone")

    def test_duration_bound_monotone_in_bid(self, spiky_predictor):
        t_idx = len(spiky_predictor.trace) - 1
        min_bid = spiky_predictor.min_bid_at(t_idx)
        bids = min_bid * np.array([1.0, 1.5, 2.0, 3.0, 4.0])
        bounds = [spiky_predictor.duration_bound(float(b), t_idx) for b in bids]
        finite = [b for b in bounds if not math.isnan(b)]
        assert all(b2 >= b1 - 1e-9 for b1, b2 in zip(finite, finite[1:]))

    def test_curve_matches_bid_for(self, spiky_predictor):
        t_idx = len(spiky_predictor.trace) - 1
        curve = spiky_predictor.curve_at(t_idx)
        assert curve is not None
        # Querying through the curve and directly must agree on achievable
        # durations (curve lookups are at ladder granularity).
        d = 3600.0
        via_curve = curve.bid_for_duration(d)
        direct = spiky_predictor.bid_for(d, t_idx)
        if math.isnan(direct):
            assert math.isnan(via_curve)
        else:
            assert via_curve == pytest.approx(direct, rel=0.06)

    def test_duration_bound_is_conservative(self, spiky_trace):
        """The certified duration rarely exceeds the realised survival."""
        predictor = DraftsPredictor(
            spiky_trace, DraftsConfig(probability=0.95)
        )
        trace = spiky_trace
        violations = 0
        total = 0
        for t_idx in range(3000, len(trace) - 1500, 499):
            bid = predictor.min_bid_at(t_idx)
            if math.isnan(bid):
                continue
            certified = predictor.duration_bound(bid, t_idx)
            if math.isnan(certified) or certified <= 0:
                continue
            realised = trace.first_reach_after(
                float(trace.times[t_idx]), bid
            ) - float(trace.times[t_idx])
            total += 1
            violations += realised < certified
        assert total > 10
        # Phase 2 certifies at level sqrt(0.95) ~ 0.975; allow sampling slack.
        assert violations / total <= 0.10

    def test_insufficient_history_gives_nan(self, spiky_trace):
        predictor = DraftsPredictor(spiky_trace, DraftsConfig())
        assert math.isnan(predictor.min_bid_at(5))
        assert math.isnan(predictor.bid_for(3600.0, 5))
        assert predictor.curve_at(5) is None

    def test_short_trace_handled(self):
        trace = generate_trace("calm", 0.1, n_epochs=50, rng=3)
        predictor = DraftsPredictor(trace, DraftsConfig())
        assert math.isnan(predictor.min_bid_at(len(trace) - 1))

    def test_premium_class_bids_above_ondemand(self, premium_trace):
        predictor = DraftsPredictor(
            premium_trace, DraftsConfig(probability=0.95)
        )
        bid = predictor.min_bid_at(len(premium_trace) - 1)
        assert bid > 0.42  # the On-demand price used by the fixture

    def test_now_prediction_at_trace_end(self, spiky_predictor):
        """t_idx == len(trace) (the service's 'now') must work."""
        n = len(spiky_predictor.trace)
        bid = spiky_predictor.bid_for(1800.0, n)
        assert not math.isnan(bid)
        curve = spiky_predictor.curve_at(n)
        assert curve is not None
