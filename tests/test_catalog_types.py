"""Unit tests for the EC2 resource model and the study catalogue."""

import pytest

from repro.market import catalog
from repro.market.types import (
    AvailabilityZone,
    InstanceType,
    Region,
    SpotRequestSpec,
)


class TestTypes:
    def test_region_zones(self):
        region = Region("us-east-1", ("b", "c"))
        assert [z.name for z in region.zones] == ["us-east-1b", "us-east-1c"]

    def test_region_validation(self):
        with pytest.raises(ValueError):
            Region("", ("a",))
        with pytest.raises(ValueError):
            Region("us-east-1", ())
        with pytest.raises(ValueError):
            Region("us-east-1", ("a", "a"))

    def test_zone_parse_roundtrip(self):
        zone = AvailabilityZone.parse("us-west-2c")
        assert zone.region == "us-west-2"
        assert zone.letter == "c"
        assert zone.name == "us-west-2c"
        with pytest.raises(ValueError):
            AvailabilityZone.parse("x")

    def test_instance_type_fields(self):
        it = InstanceType("m3.medium", 1, 3.75, 4.0, 0.067)
        assert it.family == "m3"
        assert it.size == "medium"

    def test_instance_type_validation(self):
        with pytest.raises(ValueError):
            InstanceType("nodot", 1, 1.0, 0.0, 0.1)
        with pytest.raises(ValueError):
            InstanceType("m3.medium", 0, 1.0, 0.0, 0.1)
        with pytest.raises(ValueError):
            InstanceType("m3.medium", 1, 1.0, 0.0, 0.0)

    def test_request_spec_zone_region_consistency(self):
        SpotRequestSpec("us-east-1", "us-east-1b", "m3.medium", 0.1)
        with pytest.raises(ValueError):
            SpotRequestSpec("us-east-1", "us-west-1a", "m3.medium", 0.1)
        with pytest.raises(ValueError):
            SpotRequestSpec("us-east-1", "us-east-1b", "m3.medium", 0.0)


class TestCatalog:
    def test_study_counts_match_paper(self):
        """§4.1: 53 instance types, 9 AZs, 452 offered combinations."""
        assert len(catalog.INSTANCE_TYPES) == 53
        assert len(catalog.all_zones()) == 9
        assert len(catalog.offered_combinations()) == 452

    def test_az_counts_per_region(self):
        """Footnote 5: 4 AZs in us-east-1, 2 in us-west-1, 3 in us-west-2."""
        per_region = {}
        for zone in catalog.all_zones():
            per_region[zone.region] = per_region.get(zone.region, 0) + 1
        assert per_region == {"us-east-1": 4, "us-west-1": 2, "us-west-2": 3}

    def test_cg1_matches_paper_example(self):
        """§4.1.2: cg1.4xlarge at $2.10 On-demand, not offered everywhere."""
        assert catalog.ondemand_price("cg1.4xlarge", "us-east-1") == 2.10
        assert catalog.is_offered("cg1.4xlarge", "us-east-1b")
        assert not catalog.is_offered("cg1.4xlarge", "us-west-2a")

    def test_m1_large_paper_example(self):
        """§4.4: m1.large offered in us-west-2c at $0.175 On-demand."""
        assert catalog.is_offered("m1.large", "us-west-2c")
        assert catalog.ondemand_price("m1.large", "us-west-2") == 0.175

    def test_regional_price_factor(self):
        east = catalog.ondemand_price("c4.large", "us-east-1")
        west1 = catalog.ondemand_price("c4.large", "us-west-1")
        assert west1 == pytest.approx(east * 1.10, abs=1e-4)

    def test_unknown_lookups(self):
        with pytest.raises(KeyError):
            catalog.instance_type("z9.mega")
        with pytest.raises(KeyError):
            catalog.ondemand_price("c4.large", "eu-central-1")
        with pytest.raises(KeyError):
            catalog.is_offered("z9.mega", "us-east-1b")

    def test_all_prices_positive_and_rounded(self):
        for zone in catalog.all_zones():
            for name in catalog.INSTANCE_TYPES:
                price = catalog.ondemand_price(name, zone.region)
                assert price > 0
                assert round(price, 4) == price

    def test_combinations_only_offered(self):
        for name, zone in catalog.offered_combinations():
            assert catalog.is_offered(name, zone.name)
