"""Unit tests for bid ladders and bid-duration curves."""

import math

import numpy as np
import pytest

from repro.core.curves import BidDurationCurve, bid_ladder


class TestBidLadder:
    def test_geometry(self):
        ladder = bid_ladder(1.0, increment=0.05, span=4.0)
        assert ladder[0] == pytest.approx(1.0)
        assert ladder[-1] == pytest.approx(4.0)
        ratios = ladder[1:-1] / ladder[:-2]
        np.testing.assert_allclose(ratios, 1.05)

    def test_scales_with_minimum(self):
        a = bid_ladder(0.1)
        b = bid_ladder(0.2)
        np.testing.assert_allclose(b, 2 * a)

    def test_validation(self):
        with pytest.raises(ValueError):
            bid_ladder(0.0)
        with pytest.raises(ValueError):
            bid_ladder(1.0, increment=0.0)
        with pytest.raises(ValueError):
            bid_ladder(1.0, span=0.5)


def _curve(durations=(3600.0, 7200.0, 7200.0), bids=(0.1, 0.2, 0.3)):
    return BidDurationCurve(
        bids=bids,
        durations=durations,
        probability=0.95,
        instance_type="c4.large",
        zone="us-east-1b",
        computed_at=1000.0,
    )


class TestBidDurationCurve:
    def test_validation(self):
        with pytest.raises(ValueError):
            _curve(bids=(0.1, 0.1, 0.3))  # not strictly increasing
        with pytest.raises(ValueError):
            _curve(durations=(7200.0, 3600.0, 7200.0))  # non-monotone
        with pytest.raises(ValueError):
            BidDurationCurve(bids=(), durations=(), probability=0.95)
        with pytest.raises(ValueError):
            _curve(durations=(1.0, 2.0))  # length mismatch

    def test_nan_rungs_allowed(self):
        c = _curve(durations=(float("nan"), 3600.0, 7200.0))
        assert math.isnan(c.durations[0])

    def test_bid_for_duration(self):
        c = _curve()
        assert c.bid_for_duration(3600.0) == 0.1
        assert c.bid_for_duration(5000.0) == 0.2
        assert math.isnan(c.bid_for_duration(10_000.0))
        with pytest.raises(ValueError):
            c.bid_for_duration(-1.0)

    def test_bid_for_duration_skips_nan(self):
        c = _curve(durations=(float("nan"), 3600.0, 7200.0))
        assert c.bid_for_duration(1800.0) == 0.2

    def test_duration_for_bid(self):
        c = _curve()
        assert c.duration_for_bid(0.25) == 7200.0  # rounds down a rung
        assert c.duration_for_bid(0.1) == 3600.0
        assert math.isnan(c.duration_for_bid(0.05))  # below the ladder
        assert c.duration_for_bid(9.0) == 7200.0  # clamped at the top

    def test_roundtrips(self):
        c = _curve(durations=(float("nan"), 3600.0, 7200.0))
        via_json = BidDurationCurve.from_json(c.to_json())
        assert via_json.bids == c.bids
        assert via_json.probability == c.probability
        assert math.isnan(via_json.durations[0])
        assert via_json.durations[1:] == c.durations[1:]
        assert via_json.instance_type == "c4.large"

    def test_minimum_bid_and_len(self):
        c = _curve()
        assert c.minimum_bid == 0.1
        assert len(c) == 3
