"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.provisioner.events import EventLoop


class TestScheduling:
    def test_time_ordering(self):
        loop = EventLoop()
        order = []
        loop.schedule(30.0, lambda: order.append("c"))
        loop.schedule(10.0, lambda: order.append("a"))
        loop.schedule(20.0, lambda: order.append("b"))
        loop.run()
        assert order == ["a", "b", "c"]
        assert loop.now == 30.0

    def test_fifo_for_simultaneous_events(self):
        loop = EventLoop()
        order = []
        for tag in "abcde":
            loop.schedule(5.0, lambda t=tag: order.append(t))
        loop.run()
        assert order == list("abcde")

    def test_schedule_in_past_rejected(self):
        loop = EventLoop(start_time=100.0)
        with pytest.raises(ValueError):
            loop.schedule(50.0, lambda: None)

    def test_schedule_in_relative(self):
        loop = EventLoop(start_time=10.0)
        seen = []
        loop.schedule_in(5.0, lambda: seen.append(loop.now))
        loop.run()
        assert seen == [15.0]
        with pytest.raises(ValueError):
            loop.schedule_in(-1.0, lambda: None)

    def test_events_can_schedule_events(self):
        loop = EventLoop()
        seen = []

        def first():
            seen.append("first")
            loop.schedule_in(1.0, lambda: seen.append("second"))

        loop.schedule(0.0, first)
        loop.run()
        assert seen == ["first", "second"]


class TestCancellation:
    def test_cancelled_event_skipped(self):
        loop = EventLoop()
        seen = []
        handle = loop.schedule(1.0, lambda: seen.append("x"))
        loop.schedule(2.0, lambda: seen.append("y"))
        handle.cancel()
        loop.run()
        assert seen == ["y"]

    def test_cancel_after_fire_is_noop(self):
        loop = EventLoop()
        handle = loop.schedule(1.0, lambda: None)
        loop.run()
        handle.cancel()  # must not raise


class TestRun:
    def test_run_until(self):
        loop = EventLoop()
        seen = []
        loop.schedule(1.0, lambda: seen.append(1))
        loop.schedule(10.0, lambda: seen.append(10))
        loop.run(until=5.0)
        assert seen == [1]
        assert loop.now == 5.0
        assert loop.pending == 1
        loop.run()
        assert seen == [1, 10]

    def test_step_returns_false_when_drained(self):
        loop = EventLoop()
        assert not loop.step()
        loop.schedule(1.0, lambda: None)
        assert loop.step()
        assert not loop.step()

    def test_event_storm_guard(self):
        loop = EventLoop()

        def rearm():
            loop.schedule_in(0.0, rearm)

        loop.schedule(0.0, rearm)
        with pytest.raises(RuntimeError):
            loop.run(max_events=1000)

    def test_processed_counter(self):
        loop = EventLoop()
        for i in range(5):
            loop.schedule(float(i), lambda: None)
        loop.run()
        assert loop.processed == 5
