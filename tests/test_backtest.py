"""Unit tests for the backtest engine and its aggregations."""

import math

import numpy as np
import pytest

from repro.backtest.correctness import correctness_table, sub_target_ecdf
from repro.backtest.engine import (
    BacktestConfig,
    ComboResult,
    RequestOutcome,
    check_survival,
    run_backtest,
    sample_requests,
)
from repro.baselines import DraftsBid, OnDemandBid
from repro.market.traces import PriceTrace


def _result(strategy, fractions_ok, n=10, cls="calm"):
    outcomes = tuple(
        RequestOutcome(t_idx=i, start=0.0, duration=1.0, bid=0.1, survived=ok)
        for i, ok in enumerate(fractions_ok)
    )
    return ComboResult(
        combo_key=f"x@{strategy}", strategy=strategy,
        volatility_class=cls, outcomes=outcomes,
    )


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            BacktestConfig(probability=2.0)
        with pytest.raises(ValueError):
            BacktestConfig(n_requests=0)
        with pytest.raises(ValueError):
            BacktestConfig(max_duration_hours=0)


class TestSampling:
    def test_requests_respect_training_and_horizon(self, calm_trace):
        cfg = BacktestConfig(
            probability=0.95, n_requests=200,
            max_duration_hours=4, train_days=20, seed=3,
        )
        rng = np.random.default_rng(0)
        t_idx, durations = sample_requests(calm_trace, cfg, rng)
        assert t_idx.size == 200
        starts = calm_trace.times[t_idx]
        assert np.all(starts >= calm_trace.start + 20 * 86400.0)
        assert np.all(starts <= calm_trace.end - 4 * 3600.0)
        assert np.all(durations > 0)
        assert np.all(durations <= 4 * 3600.0)

    def test_trace_too_short_rejected(self, calm_trace):
        cfg = BacktestConfig(
            probability=0.95, n_requests=5,
            max_duration_hours=4, train_days=400,
        )
        with pytest.raises(ValueError):
            sample_requests(calm_trace, cfg, np.random.default_rng(0))


class TestSurvival:
    def test_check_survival_semantics(self):
        trace = PriceTrace(
            times=np.array([0.0, 600.0, 1200.0]),
            prices=np.array([0.1, 0.5, 0.1]),
        )
        assert check_survival(trace, 0, 300.0, bid=0.3)
        assert not check_survival(trace, 0, 900.0, bid=0.3)
        assert check_survival(trace, 0, 9000.0, bid=0.6)
        # Bid at or below the current price fails immediately.
        assert not check_survival(trace, 0, 300.0, bid=0.1)
        # No bid is a failure.
        assert not check_survival(trace, 0, 300.0, bid=float("nan"))


class TestRunBacktest:
    def test_deterministic(self, small_universe):
        combo = small_universe.combo("c4.large", "us-east-1b")
        cfg = BacktestConfig(
            probability=0.95, n_requests=20,
            max_duration_hours=2, train_days=30, seed=9,
        )
        a = run_backtest(small_universe, combo, OnDemandBid, cfg)
        b = run_backtest(small_universe, combo, OnDemandBid, cfg)
        assert a == b

    def test_result_accounting(self, small_universe):
        combo = small_universe.combo("c4.large", "us-east-1b")
        cfg = BacktestConfig(
            probability=0.95, n_requests=25,
            max_duration_hours=2, train_days=30, seed=9,
        )
        result = run_backtest(small_universe, combo, DraftsBid, cfg)
        assert result.n == 25
        assert 0 <= result.successes <= 25
        assert result.success_fraction == result.successes / 25
        assert result.strategy == "drafts"
        assert result.volatility_class == combo.volatility_class

    def test_premium_ondemand_bid_always_fails(self, small_universe):
        """The §4.1.2 cg1.4xlarge phenomenon: success fraction zero."""
        combo = small_universe.combo("cg1.4xlarge", "us-east-1b")
        cfg = BacktestConfig(
            probability=0.95, n_requests=30,
            max_duration_hours=2, train_days=30, seed=9,
        )
        result = run_backtest(small_universe, combo, OnDemandBid, cfg)
        assert result.success_fraction == 0.0


class TestCorrectnessAggregation:
    def test_bucketing(self):
        results = [
            _result("m", [True] * 100),              # 1.0
            _result("m", [True] * 99 + [False]),      # 0.99
            _result("m", [True] * 90 + [False] * 10), # 0.90
        ]
        table = correctness_table(results, target=0.99)
        row = table.row("m")
        assert row.perfect == pytest.approx(1 / 3)
        assert row.at_target == pytest.approx(1 / 3)
        assert row.below_target == pytest.approx(1 / 3)
        assert row.n_combos == 3

    def test_unknown_row(self):
        table = correctness_table([_result("m", [True])], 0.99)
        with pytest.raises(KeyError):
            table.row("zzz")

    def test_render_rows(self):
        table = correctness_table([_result("m", [True] * 10)], 0.99)
        rows = table.as_rows()
        assert rows[0][0] == "m"

    def test_sub_target_ecdf(self):
        results = [
            _result("m", [True] * 50 + [False] * 50),
            _result("m", [False] * 100),
            _result("m", [True] * 100),
        ]
        x, y = sub_target_ecdf(results, "m", 0.99)
        np.testing.assert_allclose(x, [0.0, 0.5])
        np.testing.assert_allclose(y, [0.5, 1.0])

    def test_sub_target_ecdf_empty_raises(self):
        with pytest.raises(ValueError):
            sub_target_ecdf([_result("m", [True])], "m", 0.99)


class TestConsistencyColumn:
    def test_marginal_misses_flagged_consistent(self):
        # 0.98 over 100 at a 0.99 target: consistent with the guarantee.
        results = [
            _result("m", [True] * 98 + [False] * 2),
            _result("m", [True] * 100),
        ]
        table = correctness_table(results, 0.99)
        row = table.row("m")
        assert row.below_target == pytest.approx(0.5)
        assert row.below_but_consistent == pytest.approx(1.0)

    def test_gross_misses_flagged_inconsistent(self):
        results = [
            _result("m", [True] * 50 + [False] * 50),
            _result("m", [True] * 98 + [False] * 2),
        ]
        table = correctness_table(results, 0.99)
        # One of the two sub-target combos contradicts the guarantee.
        assert table.row("m").below_but_consistent == pytest.approx(0.5)

    def test_no_misses_defaults_to_one(self):
        table = correctness_table([_result("m", [True] * 10)], 0.99)
        assert table.row("m").below_but_consistent == 1.0
