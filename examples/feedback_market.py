#!/usr/bin/env python
"""Future work (§6): does widespread DrAFTS adoption destabilise the market?

The paper closes by asking what happens when many market participants use
DrAFTS to set their bids. The mechanistic auction substrate makes the
question runnable: we simulate one Spot pool twice —

* baseline: the ordinary bidder population;
* feedback: a share of arrivals bid the current DrAFTS prediction (fitted
  online on the published price series) instead of their own valuation —

and compare price level, volatility and stickiness between the two runs.

Run: ``python examples/feedback_market.py`` (about a minute).
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.qbets import QBETS, QBETSConfig
from repro.market.agents import AgentPopulation, PopulationConfig
from repro.market.auction import Bid, clear_market
from repro.market.supply import RandomWalkSupply
from repro.util.rng import RngFactory
from repro.util.stats import lag1_autocorr

EPOCHS = 40 * 288  # 40 days
DRAFTS_SHARE = 0.5  # half the arrivals follow DrAFTS


def simulate(drafts_share: float, seed: int = 9) -> np.ndarray:
    """One pool, with a DrAFTS-following fraction of extra demand."""
    rng = RngFactory(seed).generator("feedback")
    population = AgentPopulation(
        PopulationConfig(arrival_rate=5.0, base_valuation=0.2), rng
    )
    supply = RandomWalkSupply(initial=60, minimum=40, maximum=80)
    qbets = QBETS(QBETSConfig(q=math.sqrt(0.95), c=0.99))
    prices = np.empty(EPOCHS)
    next_id = 10_000_000  # ids disjoint from the population's
    for epoch in range(EPOCHS):
        bids = population.step(epoch)
        # DrAFTS followers: a fraction of extra arrivals bid the current
        # prediction plus the tick premium, exactly as a DrAFTS user would.
        drafts_bid = qbets.bound + 1e-4
        if not math.isnan(drafts_bid):
            n_followers = rng.poisson(5.0 * drafts_share)
            for _ in range(n_followers):
                bids.append(
                    Bid(bidder_id=next_id, price=round(drafts_bid, 4))
                )
                next_id += 1
        capacity = supply.capacity(epoch, rng)
        result = clear_market(bids, capacity, reserve_price=0.02)
        population.after_clearing(result.price, result.rejected)
        qbets.update(result.price)
        prices[epoch] = result.price
    return prices


def describe(label: str, prices: np.ndarray) -> None:
    tail = prices[len(prices) // 4 :]  # skip warm-up
    print(
        f"  {label:9s} mean=${tail.mean():.4f}  "
        f"cv={tail.std() / tail.mean():.3f}  "
        f"lag-1 autocorr={lag1_autocorr(tail):.3f}  "
        f"p99=${np.quantile(tail, 0.99):.4f}"
    )


def main() -> None:
    print(f"simulating {EPOCHS} epochs ({EPOCHS // 288} days) per scenario\n")
    baseline = simulate(drafts_share=0.0)
    feedback = simulate(drafts_share=DRAFTS_SHARE)
    print("price dynamics (post warm-up):")
    describe("baseline", baseline)
    describe("feedback", feedback)

    b, f = baseline[len(baseline) // 4 :], feedback[len(feedback) // 4 :]
    lift = f.mean() / b.mean()
    cv_change = (f.std() / f.mean()) / (b.std() / b.mean())
    print(
        f"\nwith {DRAFTS_SHARE:.0%} of demand following DrAFTS, the mean "
        f"clearing price changes by a factor of {lift:.2f} and the "
        f"coefficient of variation by a factor of {cv_change:.2f}."
    )
    if cv_change < 1.0:
        print(
            "In this mechanism the followers *stabilise* the market: they "
            "bid just above the prevailing price, so during demand spikes "
            "they are outbid and release capacity, damping the excursions "
            "that non-strategic bidders would otherwise ride up. Whether "
            "real adoption would degrade DrAFTS's own predictions is "
            "exactly the open question the paper's §6 poses — here the "
            "predictions remain valid because the price dynamics get "
            "easier, not harder."
        )
    else:
        print(
            "Followers amplify the market here: bidding at the margin adds "
            "demand exactly where the price is set, the self-reinforcement "
            "the paper's future-work section worries about."
        )


if __name__ == "__main__":
    main()
