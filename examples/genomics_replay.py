#!/usr/bin/env python
"""Replay a genomics-platform workload under three bidding policies (§4.3).

Reproduces the Table 2/3 scenario end to end: a Globus-Genomics-shaped job
stream is replayed against the simulated Spot tier under

* the platform's original rule (bid 80 % of On-demand, price-blind AZs),
* DrAFTS with a one-hour durability requirement, and
* DrAFTS with profile-estimated durations,

and reports instances, realised cost, worst-case ("risked") cost and
provider terminations for each.

Run: ``python examples/genomics_replay.py`` (takes a minute or two — the
DrAFTS policies recompute service curves over 90-day histories).
"""

from __future__ import annotations

from repro.market import Universe, UniverseConfig
from repro.provisioner import ReplayConfig, paper_replay_workload, run_replay
from repro.util.tables import format_table


def main() -> None:
    # A 100-day universe: 92 training days before the replay window.
    universe = Universe(UniverseConfig(seed=5, n_epochs=100 * 288))
    jobs = paper_replay_workload(rng=11, n_jobs=300)
    print(
        f"workload: {len(jobs)} jobs over "
        f"{jobs[-1].submit_time / 3600:.1f} h of submissions "
        f"({sum(j.runtime for j in jobs) / 3600:.0f} instance-hours of work)"
    )

    config = ReplayConfig(start_after_days=92.0, probability=0.99, seed=3)
    rows = []
    for policy in ("original", "drafts-1hr", "drafts-profiles"):
        result = run_replay(universe, jobs, policy, config)
        rows.append(
            [
                result.policy,
                result.instances,
                f"${result.cost:.2f}",
                f"${result.max_bid_cost:.2f}",
                result.terminations,
                result.ondemand_instances,
            ]
        )
    print()
    print(
        format_table(
            [
                "Policy",
                "Instances",
                "Cost",
                "Max Bid Cost",
                "Terminations",
                "On-demand fallbacks",
            ],
            rows,
            title="Workload replay (cf. paper Tables 2-3)",
        )
    )
    print(
        "\nDrAFTS completes the same workload at lower cost and a fraction "
        "of the worst-case financial risk."
    )


if __name__ == "__main__":
    main()
