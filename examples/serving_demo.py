#!/usr/bin/env python
"""Operate the production serving gateway (§3.3's architecture at scale).

Walks the serving subsystem end to end:

1. a :class:`ServingGateway` fronts the DrAFTS service with a sharded
   curve store — client GETs are cache reads;
2. stale entries are served immediately while the background refresher
   recomputes off the request path (stale-while-revalidate, the paper's
   15-minute cron made non-blocking);
3. a Zipf-skewed load generator replays deterministic traffic and the
   ``/metrics`` route accounts for every request;
4. the provisioner's DrAFTS policy consumes the gateway through the same
   client interface the Globus Galaxies platform used.

Run: ``python examples/serving_demo.py``
"""

from __future__ import annotations

from repro.cloud.api import EC2Api
from repro.market import Universe, UniverseConfig
from repro.provisioner.provisioner import DraftsPolicy
from repro.service import DraftsService
from repro.serving import (
    LoadgenConfig,
    LoadGenerator,
    ManualClock,
    ServingGateway,
)

INSTANCE_TYPE = "c4.large"
REGION = "us-east-1"


def main() -> None:
    universe = Universe(UniverseConfig(seed=5, n_epochs=70 * 288))
    api = EC2Api(universe)
    service = DraftsService(api)
    gateway = ServingGateway(service, clock=ManualClock())

    combo = universe.combo(INSTANCE_TYPE, f"{REGION}b")
    now = universe.trace(combo).start + 45 * 86400.0

    # 1. Cold read: the store misses, one coalesced recompute fills it.
    url = f"/predictions/{INSTANCE_TYPE}/{REGION}b?probability=0.95&now={now}"
    response = gateway.get(url)
    print(f"cold GET /predictions -> {response.status} "
          f"({len(response.body['bids'])} ladder rungs)")

    # 2. Warm read: pure cache hit.
    print(f"warm GET /predictions -> {gateway.get(url).status}")

    # 3. One hour later the entry is stale: served immediately, refreshed
    #    off the request path.
    stale_url = (
        f"/predictions/{INSTANCE_TYPE}/{REGION}b"
        f"?probability=0.95&now={now + 3600}"
    )
    response = gateway.get(stale_url)
    key = (INSTANCE_TYPE, f"{REGION}b", 0.95)
    print(
        f"stale GET -> {response.status} served from generation "
        f"{gateway.store.peek(key).generation}, "
        f"{gateway.refresher.pending_count()} refresh pending"
    )
    gateway.refresher.run_pending()
    print(f"after background refresh: generation "
          f"{gateway.store.peek(key).generation}")

    # 4. Deterministic Zipf-skewed traffic over a few hot combinations.
    keys = [
        (INSTANCE_TYPE, zone, 0.95)
        for zone in api.describe_availability_zones(REGION)[:3]
    ]
    generator = LoadGenerator(
        keys,
        LoadgenConfig(
            n_requests=200, seed=11, start_now=now + 3600, now_drift=15.0
        ),
    )
    for request in generator.requests():
        gateway.get(request.url)
    gateway.refresher.run_pending()

    counters = gateway.get("/metrics").body["counters"]
    total = counters["gateway.requests"]
    served = (
        counters["gateway.hits"]
        + counters["gateway.stale_hits"]
        + counters["gateway.misses"]
        + counters["gateway.shed"]
        + counters["gateway.errors"]
    )
    print("\nafter 200 generated requests:")
    for name in (
        "gateway.requests",
        "gateway.hits",
        "gateway.stale_hits",
        "gateway.misses",
        "serving.recomputes",
        "serving.coalesced",
    ):
        print(f"  {name:28s} {counters[name]}")
    print(f"  accounting balanced: {served == total}")
    print(f"  service cache_info: {service.cache_info()}")

    # 5. The provisioner consumes the gateway like any DrAFTS endpoint.
    policy = DraftsPolicy.from_gateway(api, gateway, REGION, probability=0.95)
    plan = policy.plan(INSTANCE_TYPE, now + 7200, estimated_duration=3600.0)
    print(
        f"\nprovisioner via gateway: launch {INSTANCE_TYPE} in {plan.zone} "
        f"({plan.tier}) at bid ${plan.bid:.4f}"
    )


if __name__ == "__main__":
    main()
