#!/usr/bin/env python
"""Survey the price dynamics of the study universe (§2.2, §4.1.3).

Reproduces the paper's exploratory analysis: measure the stylised facts of
each volatility class (discount, above-On-demand episodes, floor
stickiness, autocorrelation) and test which classes a Gaussian AR(1) model
actually fits — the §4.1.3 finding that "some series are well-modeled by an
AR(n) process and some are not", which is why the AR(1) baseline misses its
durability target where it does.

Run: ``python examples/market_survey.py``
"""

from __future__ import annotations

import numpy as np

from repro.analysis import diagnose_ar1, stylized_facts
from repro.market import Universe, UniverseConfig
from repro.util.tables import format_table


def main() -> None:
    universe = Universe(UniverseConfig(seed=5, n_epochs=90 * 288))
    combos = universe.subsample(per_class=2)

    rows = []
    ar1_verdicts: dict[str, list[bool]] = {}
    for combo in combos:
        trace = universe.trace(combo)
        facts = stylized_facts(trace, combo.ondemand_price)
        diagnosis = diagnose_ar1(trace.prices)
        ar1_verdicts.setdefault(combo.volatility_class, []).append(
            diagnosis.quantile_calibrated
        )
        rows.append(
            [
                combo.key,
                combo.volatility_class,
                f"{facts.discount:.0%}",
                f"{facts.fraction_above_ondemand:.2%}",
                facts.episodes_above_ondemand,
                f"{facts.autocorr:.3f}",
                "yes" if diagnosis.well_modelled else "no",
                "yes" if diagnosis.quantile_calibrated else "no",
            ]
        )

    print(
        format_table(
            [
                "Combination",
                "Class",
                "Discount",
                ">OD time",
                ">OD episodes",
                "Autocorr",
                "AR(1) fits?",
                "q99 covers?",
            ],
            rows,
            title="Spot market survey (two combinations per volatility class)",
        )
    )

    print(
        "\nAR(1) 0.99-quantile calibration per class (what the bidding "
        "baseline needs):"
    )
    for cls, verdicts in sorted(ar1_verdicts.items()):
        share = np.mean(verdicts)
        print(f"  {cls:9s}: calibrated in {share:.0%} of sampled combos")
    print(
        "\nClasses with plateaus, spikes or regime shifts defeat the "
        "Gaussian AR(1) assumptions — exactly where the AR(1) bidding "
        "baseline under-covers in Table 1, while smooth seasonal series "
        "remain coverable even though they are formally not AR(1)."
    )


if __name__ == "__main__":
    main()
