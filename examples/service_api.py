#!/usr/bin/env python
"""Operate the DrAFTS decision-support service (§3.3).

Demonstrates the service-side workflow the production prototype at
predictspotprice.cs.ucsb.edu implements:

1. the service periodically recomputes bid-duration curves per instance
   type and AZ from the (90-day-capped) price-history API;
2. clients query it over REST for machine-readable graphs, point bids and
   AZ recommendations;
3. because Amazon obfuscates AZ names per account (§2.2), a client on a
   different account first *deobfuscates* the zone mapping by correlating
   its own price histories with the service's.

Run: ``python examples/service_api.py``
"""

from __future__ import annotations

from repro.cloud.api import EC2Api
from repro.market import Universe, UniverseConfig
from repro.market.obfuscation import AccountView, deobfuscate
from repro.service import DraftsClient, DraftsService, RestRouter

INSTANCE_TYPE = "c3.2xlarge"
REGION = "us-west-1"


def main() -> None:
    universe = Universe(UniverseConfig(seed=5, n_epochs=100 * 288))

    # The service runs under its own account (physical zone names here).
    service_api = EC2Api(universe)
    service = DraftsService(service_api)
    router = RestRouter(service)
    client = DraftsClient(router)

    combo = universe.combo(INSTANCE_TYPE, f"{REGION}a")
    now = universe.trace(combo).start + 95 * 86400.0

    print(f"service healthy: {client.health()}")

    # Raw REST round trip (what the Globus Galaxies provisioner consumed).
    response = router.get(
        f"/predictions/{INSTANCE_TYPE}/{REGION}a?probability=0.95&now={now}"
    )
    print(f"\nGET /predictions -> {response.status}")
    bids = response.body["bids"]
    durations = response.body["durations"]
    for bid, duration in list(zip(bids, durations))[:6]:
        label = "-" if duration is None else f"{duration / 3600:.2f} h"
        print(f"  ${bid:.4f} guarantees {label}")

    # Point queries.
    zone, min_bid = client.cheapest_zone(INSTANCE_TYPE, REGION, 0.95, now)
    print(f"\ncheapest AZ for {INSTANCE_TYPE}: {zone} (min bid ${min_bid:.4f})")
    bid = client.bid_for(INSTANCE_TYPE, zone, 0.95, 3300.0, now)
    print(f"bid for a 55-minute run at p=0.95: ${bid:.4f}")

    # A client account sees permuted AZ names; recover the mapping by
    # comparing price histories (the paper performed this manually).
    view = AccountView.random(REGION, ("a", "b"), rng=42)
    client_api = EC2Api(universe, {REGION: view})
    local = {
        z: client_api.describe_spot_price_history(INSTANCE_TYPE, z, now)
        for z in client_api.describe_availability_zones(REGION)
    }
    remote = {
        z: service_api.describe_spot_price_history(INSTANCE_TYPE, z, now)
        for z in service_api.describe_availability_zones(REGION)
    }
    mapping = deobfuscate(local, remote)
    print("\ndeobfuscated AZ mapping (client name -> service name):")
    for local_name, service_name in sorted(mapping.items()):
        check = "ok" if view.to_physical(local_name) == service_name else "MISMATCH"
        print(f"  {local_name} -> {service_name}  [{check}]")


if __name__ == "__main__":
    main()
