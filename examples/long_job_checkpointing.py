#!/usr/bin/env python
"""Run a long batch job on a volatile Spot pool, three ways (§5).

The related work the DrAFTS paper discusses tolerates revocations with
checkpoints; DrAFTS prevents them with certified bids. This example runs a
12-hour job on a volatile pool under

* ``naive``     — 80 % of On-demand, no checkpoints (lose-it-all);
* ``reactive``  — bid the On-demand price, Young-Daly periodic checkpoints
                  from an MTTF estimate (the SpotCheck recipe);
* ``drafts``    — DrAFTS-certified bids with a single checkpoint near the
                  certified horizon's end.

Run: ``python examples/long_job_checkpointing.py``
"""

from __future__ import annotations

from repro.faulttol import (
    make_drafts_executor,
    make_naive_executor,
    make_reactive_executor,
)
from repro.market import synthetic_trace
from repro.util.tables import format_table

ONDEMAND = 0.84  # c3.4xlarge-ish
WORK = 12 * 3600.0


def main() -> None:
    trace = synthetic_trace(
        "volatile", seed=11, n_epochs=80 * 288, ondemand_price=ONDEMAND
    )
    start = trace.start + 60 * 86400.0  # 60 days of history to learn from
    print(
        f"pool: volatile, prices ${trace.prices.min():.3f}-"
        f"${trace.prices.max():.2f} (On-demand ${ONDEMAND}); "
        f"job: {WORK / 3600:.0f} h of work\n"
    )

    executors = {
        "naive (0.8xOD, no ckpt)": make_naive_executor(trace, ONDEMAND),
        "reactive (OD + Young-Daly)": make_reactive_executor(
            trace, ONDEMAND, start
        ),
        "DrAFTS (certified + guided)": make_drafts_executor(
            trace, total_work=WORK
        ),
    }
    rows = []
    for name, executor in executors.items():
        report = executor.run(start, WORK)
        rows.append(
            [
                name,
                "yes" if report.completed else "NO",
                f"{report.makespan / 3600:.1f} h",
                f"${report.cost:.2f}",
                report.restarts,
                report.checkpoints,
                f"{report.work_lost / 3600:.2f} h",
                f"{report.efficiency:.0%}",
            ]
        )
    print(
        format_table(
            [
                "Strategy",
                "Done",
                "Makespan",
                "Cost",
                "Restarts",
                "Ckpts",
                "Lost work",
                "Efficiency",
            ],
            rows,
            title="12-hour batch job on a volatile Spot pool",
        )
    )
    print(
        "\nDrAFTS needs neither frequent checkpoints nor luck: the bid is "
        "sized so the certified horizon covers the work, and one guided "
        "checkpoint insures the residual 5%."
    )


if __name__ == "__main__":
    main()
