#!/usr/bin/env python
"""The §4.4 cost-optimisation strategy, per request.

For a batch of instance requests with known durations, compare the DrAFTS
bid (at the same 0.99 durability the On-demand SLA provides) with the
On-demand price, provision the cheaper branch, and report the savings —
the strategy behind the paper's Tables 4 and 5.

Run: ``python examples/cost_optimizer.py``
"""

from __future__ import annotations

import math

from repro.backtest.costopt import run_costopt
from repro.backtest.engine import BacktestConfig
from repro.baselines.drafts_strategy import DraftsBid
from repro.market import Universe, UniverseConfig
from repro.util.tables import format_table


def main() -> None:
    universe = Universe(UniverseConfig(seed=5, n_epochs=100 * 288))

    # One combination per behaviour class, to show the spread the paper's
    # per-AZ tables aggregate over.
    keys = [
        ("m1.large", "us-west-2c"),  # §4.4's cheap calm example
        ("c3.2xlarge", "us-west-1a"),  # spiky
        ("c4.4xlarge", "us-east-1e"),  # §4.4's volatile example
        ("cg1.4xlarge", "us-east-1b"),  # §4.1.2's premium example
    ]
    combos = [universe.combo(t, z) for t, z in keys]

    # Per-request decisions for one illustrative combination.
    combo = combos[0]
    trace = universe.trace(combo)
    strategy = DraftsBid.for_combo(combo, trace, probability=0.99)
    t_idx = len(trace) - 200
    print(f"{combo.key} (On-demand ${combo.ondemand_price}/h):")
    for hours in (1, 4, 8):
        bid = strategy.bid_at(t_idx, hours * 3600.0)
        if math.isnan(bid) or bid >= combo.ondemand_price:
            print(f"  {hours} h -> On-demand (no cheaper durable bid)")
        else:
            print(
                f"  {hours} h -> Spot, bid ${bid:.4f} "
                f"(worst case {bid / combo.ondemand_price:.0%} of On-demand)"
            )

    # Aggregate over many random requests, as the paper's tables do.
    cfg = BacktestConfig(
        probability=0.99, n_requests=80,
        max_duration_hours=6, train_days=90, seed=4,
    )
    table = run_costopt(universe, combos, cfg)
    rows = [
        [
            r.zone,
            f"${r.ondemand_cost:.2f}",
            f"${r.strategy_cost:.2f}",
            f"{r.savings:.1%}",
            f"{r.spot_requests}/{r.spot_requests + r.ondemand_requests}",
        ]
        for r in table.rows
    ]
    print()
    print(
        format_table(
            ["AZ", "On-demand", "Strategy", "Savings", "Spot share"],
            rows,
            title="min(DrAFTS, On-demand) at 0.99 durability (cf. Table 4)",
        )
    )
    print(f"\ntotal savings: {table.total_savings:.1%}")


if __name__ == "__main__":
    main()
