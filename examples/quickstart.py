#!/usr/bin/env python
"""Quickstart: compute a DrAFTS bid for one Spot market.

The core DrAFTS workflow in four steps:

1. obtain a Spot price history (here: a synthetic 3-month trace of the
   "spiky" volatility class — plateaus that occasionally exceed the
   On-demand price, the situation naive bids mishandle);
2. fit a :class:`~repro.core.drafts.DraftsPredictor` at a durability target;
3. ask for the minimum bid guaranteeing the duration you need;
4. inspect the full bid-duration trade-off curve.

Run: ``python examples/quickstart.py``
"""

from __future__ import annotations

import math

from repro import DraftsConfig, DraftsPredictor
from repro.market import synthetic_trace

ONDEMAND_PRICE = 0.42  # $/hour for the instance type we pretend to use


def main() -> None:
    # 1. Three months of 5-minute Spot price announcements.
    trace = synthetic_trace(
        "spiky", seed=3, n_epochs=26_000, ondemand_price=ONDEMAND_PRICE
    )
    print(
        f"price history: {len(trace)} announcements over "
        f"{trace.span / 86400:.0f} days, "
        f"range ${trace.prices.min():.4f}-${trace.prices.max():.4f} "
        f"(On-demand: ${ONDEMAND_PRICE})"
    )

    # 2. Fit DrAFTS at a 95% durability target (c = 0.99 confidence).
    predictor = DraftsPredictor(trace, DraftsConfig(probability=0.95))
    now = len(trace)  # predict for "now", right after the last announcement

    # 3. Minimum bids for a few required durations.
    print("\nminimum bid guaranteeing each duration with probability 0.95:")
    for hours in (0.5, 1, 2, 4, 8):
        bid = predictor.bid_for(hours * 3600.0, now)
        if math.isnan(bid):
            print(f"  {hours:4.1f} h : not guaranteeable within the bid ladder")
        else:
            marker = "below On-demand!" if bid < ONDEMAND_PRICE else ""
            print(f"  {hours:4.1f} h : ${bid:.4f}  {marker}")

    # 4. The full bid-duration curve (the Figure 4 artefact).
    curve = predictor.curve_at(now)
    assert curve is not None
    print("\nbid-duration curve (5% rungs up to 4x the minimum bid):")
    for bid, duration in zip(curve.bids[::4], curve.durations[::4]):
        if math.isnan(duration):
            print(f"  ${bid:8.4f} -> (no guarantee yet)")
        else:
            print(f"  ${bid:8.4f} -> {duration / 3600:5.2f} h")


if __name__ == "__main__":
    main()
