#!/usr/bin/env bash
# Local CI: lint (when ruff is available) + the tier-1 test suite.
#
# Usage: scripts/check.sh [extra pytest args...]
set -euo pipefail

cd "$(dirname "$0")/.."

if command -v ruff >/dev/null 2>&1; then
    echo "== ruff check =="
    ruff check src tests benchmarks examples
else
    echo "== ruff not installed; skipping lint =="
fi

echo "== tier-1 tests =="
PYTHONPATH=src python -m pytest -x -q "$@"

# Smoke-run the benchmark suite: --benchmark-disable executes every bench
# body once without timing rounds, so import errors and broken experiment
# plumbing surface here instead of in a long benchmark session. Skippable
# for quick local iterations with CHECK_SKIP_BENCH=1 — except the serving
# bench, whose acceptance checks (refresh equivalence, coalescing,
# accounting) are fast enough to always run.
if [ "${CHECK_SKIP_BENCH:-0}" != "1" ]; then
    echo "== benchmark smoke (--benchmark-disable) =="
    PYTHONPATH=src python -m pytest benchmarks/ -q --benchmark-disable
else
    echo "== serving bench smoke (--benchmark-disable) =="
    PYTHONPATH=src python -m pytest benchmarks/bench_serving.py -q --benchmark-disable
fi

# Universe-tick smoke: advance a 32-key universe through the vectorised
# structure-of-arrays path in lockstep with per-key scalar predictors and
# require bit-identical curves and bids at every checkpoint (~2 s). Exits
# non-zero on the first divergence.
echo "== universe tick smoke (batch vs scalar bit-identity) =="
PYTHONPATH=src python -m repro universe-smoke --keys 32

# Universe-fit smoke: batch-fit a 32-key universe (ragged history lengths)
# through the structure-of-arrays phase-1 fitter and require bit-identical
# bound series, change points, ladders and bids against per-key scalar
# fits (~3 s); then smoke-run the gating benchmark body once untimed.
echo "== universe fit smoke (batch vs scalar bit-identity) =="
PYTHONPATH=src python -m repro fit-smoke --keys 32
PYTHONPATH=src python -m pytest benchmarks/bench_universe_fit.py -q --benchmark-disable

# Seeded chaos smoke: faulty history API at 10% error rate plus a mid-run
# snapshot/restore round-trip with one deliberately torn file. Exits
# non-zero if any serving invariant (metrics conservation, breaker
# sequencing, stale-never-error, snapshot restore) is violated.
echo "== chaos smoke (seeded fault injection) =="
PYTHONPATH=src python -m repro chaos --requests 120 --error-rate 0.1 --seed 7 >/dev/null \
    && echo "chaos invariants hold"

# Socket round trip: spawn the gateway on a real ephemeral port and replay
# a few hundred open-loop requests against it (~2 s). Exercises the full
# serve path — listener, keep-alive connections, graceful drain — and the
# replayer's SLO accounting; exits non-zero if the error rate blows up.
echo "== serve+replay smoke (real socket round trip) =="
PYTHONPATH=src python -m repro replay --spawn --requests 300 --rate 300 \
    --warmup 30 --seed 7 >/dev/null \
    && echo "socket replay round trip ok"

# Same round trip over the asyncio front end: inline fast path, executor
# offload, graceful drain (the command exits non-zero if the spawned
# server fails to drain cleanly).
echo "== serve+replay smoke (asyncio front end) =="
PYTHONPATH=src python -m repro replay --spawn --async --requests 300 --rate 300 \
    --warmup 30 --seed 7 >/dev/null \
    && echo "asyncio replay round trip ok"

# Router smoke: boot two forked shard workers behind the consistent-hash
# front tier, assert the partition is exhaustive and disjoint (worker
# /healthz identities vs the planned assignment, distinct pids), compare
# routed bytes against a warm single-process gateway on every status path
# (200/400/404/503/504 plus a cross-shard /cheapest merge), then drain
# the whole deployment cleanly. Exits non-zero on the first divergence.
echo "== router smoke (2 forked shards, byte parity + clean drain) =="
PYTHONPATH=src python -m repro router-smoke --keys 4 --shards 2
