#!/usr/bin/env bash
# Local CI: lint (when ruff is available) + the tier-1 test suite.
#
# Usage: scripts/check.sh [extra pytest args...]
set -euo pipefail

cd "$(dirname "$0")/.."

if command -v ruff >/dev/null 2>&1; then
    echo "== ruff check =="
    ruff check src tests benchmarks examples
else
    echo "== ruff not installed; skipping lint =="
fi

echo "== tier-1 tests =="
PYTHONPATH=src python -m pytest -x -q "$@"
