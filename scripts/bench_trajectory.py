#!/usr/bin/env python
"""Measure the performance trajectory: ``BENCH_backtest.json`` + ``BENCH_serving.json``.

Times the numbers the optimisation work is gated on —

* the cold sequential bench-scale backtest matrix (the Table 1 hot path),
* QBETS per-update latency on a warm three-month predictor,
* the warm (predictor-cache) matrix re-run,
* the universe-wide vectorised epoch tick (full 452-key universe advanced
  in one structure-of-arrays step, A/B'd in-run against the scalar
  per-key observe+curve loop, curves checked bit-identical),
* the universe-wide batched phase-1 fit (452 keys fitted as one SoA
  column sweep, A/B'd against the scalar per-key ``DraftsPredictor``
  construction loop, bounds/ladders checked bit-identical) plus — at the
  bench scale — the paper-scale sequential Table 1 wall-clock, the
  headline number the fit batching is gated on,

written to ``BENCH_backtest.json`` next to the recorded pre-optimisation
baselines, and

* the serving refresh phase (cold fit vs steady-state per-key refresh,
  incremental delta-fed predictors A/B'd against the full-refit baseline),
* the socket-serving SLO phase (an open-loop diurnal x Zipf replay over a
  real listening socket — p50/p99/p99.9, shed/timeout rates, offered vs
  achieved throughput — plus the seeded latency-spike A/B showing hedged
  p99.9 below unhedged),
* the HTTP front-end comparison (the same multi-wave open-loop replay
  against the thread-per-connection server and the asyncio event-loop
  server; gated on asyncio reaching 1.5x the threaded achieved
  throughput at equal-or-better p99),
* the shard-routed scaling curve (fork-mode 1/2/4-shard deployments
  behind the consistent-hash router, each replayed with the identical
  open-loop stream against a direct single-worker baseline; the gate is
  hardware-aware — 2x at 4 shards on >= 4 cores, throughput
  preservation with zero errors and clean drains on smaller hosts),

written to ``BENCH_serving.json`` (one report per run, every phase
re-measured, so adding the SLO phase never drops the refresh/restart
numbers). Run from the repository root::

    PYTHONPATH=src python scripts/bench_trajectory.py

Use ``--scale test`` for a seconds-long smoke run (the backtest JSON then
carries no baseline comparison: the baselines were recorded at the bench
scale).
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path

import numpy as np

#: Pre-optimisation numbers, recorded on the reference machine at the seed
#: revision (sequential bench-scale matrix; volatile-trace warm predictor).
BASELINE = {
    "backtest_matrix_bench_seq_s": 63.710,
    "qbets_update_mean_us": 23.357,
    "qbets_fit_3mo_ms": 550.6,
    # Paper-scale sequential Table 1 before the batched phase-1 fit
    # (PR 6's frozen-replay driver with per-combo scalar fits).
    "table1_paper_seq_s": 522.0,
}


def _time_backtest(scale: str) -> tuple[float, float, dict]:
    from repro.backtest import predcache
    from repro.experiments.parallel import backtest_matrix

    predcache.clear()
    start = time.perf_counter()
    cold = backtest_matrix(scale=scale, probability=0.99, workers=0)
    cold_s = time.perf_counter() - start

    start = time.perf_counter()
    warm = backtest_matrix(scale=scale, probability=0.99, workers=0)
    warm_s = time.perf_counter() - start
    if warm != cold:
        raise AssertionError("warm-cache matrix diverged from cold run")
    return cold_s, warm_s, predcache.cache_info()


def _time_qbets_updates(n_updates: int = 20_000) -> float:
    from repro.core.qbets import QBETS, QBETSConfig
    from repro.market.synthetic import generate_trace

    trace = generate_trace("volatile", 0.42, n_epochs=26_000, rng=3)
    qb = QBETS(QBETSConfig(q=0.975, c=0.99))
    qb.bound_series(trace.prices)
    tail = generate_trace("volatile", 0.42, n_epochs=4000, rng=4)
    updates = np.tile(tail.prices, 1 + n_updates // tail.prices.size)
    updates = updates[:n_updates].tolist()
    start = time.perf_counter()
    for value in updates:
        qb.update(value)
    return (time.perf_counter() - start) / n_updates * 1e6


def _time_universe_tick(scale: str) -> dict:
    """Steady-state full-universe tick latency vs the scalar loop.

    The minimum over the measured ticks is reported as the latency
    estimate: on a single-vCPU box scheduler preemption adds a heavy
    right tail, so the best-observed tick is the honest compute cost
    (p50/p90 ride along for the noise picture). The scalar baseline is
    measured in the same run over the identical epochs, and the curves
    both paths publish afterwards are compared bit for bit.
    """
    import gc
    import math

    from repro.core.drafts import DraftsConfig
    from repro.core.online import OnlineDraftsPredictor
    from repro.core.universe import UniverseTicker
    from repro.market.synthetic import VOLATILITY_CLASSES, synthetic_trace

    if scale == "bench":
        n_keys, warm, meas, scalar_meas = 452, 600, 96, 10
    else:
        n_keys, warm, meas, scalar_meas = 32, 150, 20, 5
    n_epochs = warm + meas
    config = DraftsConfig(probability=0.95)
    classes = list(VOLATILITY_CLASSES)
    keys = [f"k{i}" for i in range(n_keys)]
    prices = np.empty((n_keys, n_epochs))
    times = None
    for i in range(n_keys):
        trace = synthetic_trace(
            classes[i % len(classes)], seed=1000 + i, n_epochs=n_epochs
        )
        prices[i] = np.asarray(trace.prices)
        if times is None:
            times = np.asarray(trace.times, dtype=float)

    ticker = UniverseTicker(config)
    for key in keys:
        ticker.add_key(key, instance_type="m4.large", zone="us-east-1a")
    for t in range(warm):
        ticker.tick(float(times[t]), prices[:, t])
    batch_ms = np.empty(meas)
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for j, t in enumerate(range(warm, n_epochs)):
            start = time.perf_counter()
            ticker.tick(float(times[t]), prices[:, t])
            batch_ms[j] = (time.perf_counter() - start) * 1e3
    finally:
        if gc_was_enabled:
            gc.enable()

    scalars = [OnlineDraftsPredictor(config) for _ in keys]
    scalar_from = n_epochs - scalar_meas
    for t in range(scalar_from):
        for i in range(n_keys):
            scalars[i].observe(float(times[t]), float(prices[i, t]))
        if t % 16 == 0:
            for scalar in scalars:
                scalar.curve()
    scalar_ms = np.empty(scalar_meas)
    gc.disable()
    try:
        for j, t in enumerate(range(scalar_from, n_epochs)):
            start = time.perf_counter()
            for i in range(n_keys):
                scalars[i].observe(float(times[t]), float(prices[i, t]))
                scalars[i].curve()
            scalar_ms[j] = (time.perf_counter() - start) * 1e3
    finally:
        if gc_was_enabled:
            gc.enable()

    def curves_equal(a, b):
        if a is None or b is None:
            return a is b
        if a.bids != b.bids or a.computed_at != b.computed_at:
            return False
        return all(
            x == y or (math.isnan(x) and math.isnan(y))
            for x, y in zip(a.durations, b.durations)
        )

    equivalent = all(
        curves_equal(ticker.curve_for(key), scalars[i].curve())
        for i, key in enumerate(keys)
    )
    return {
        "n_keys": n_keys,
        "tick_best_ms": round(float(batch_ms.min()), 3),
        "tick_p50_ms": round(float(np.percentile(batch_ms, 50)), 3),
        "tick_p90_ms": round(float(np.percentile(batch_ms, 90)), 3),
        "scalar_p50_ms": round(float(np.percentile(scalar_ms, 50)), 1),
        "speedup_p50": round(
            float(np.percentile(scalar_ms, 50) / np.percentile(batch_ms, 50)),
            1,
        ),
        "equivalent": equivalent,
    }


def _time_universe_fit(scale: str) -> dict:
    """Batched universe-wide phase-1 fit vs the scalar per-key loop.

    Both sides are timed best-of-rounds (the minimum is the honest
    compute-cost estimator on a noisy single-vCPU box) over the identical
    trace set, and the handed-off predictors are compared bit for bit:
    bound series, final bounds, change points and ladder levels.
    """
    from repro.core.drafts import DraftsConfig, DraftsPredictor
    from repro.core.universe_fit import fit_drafts_universe
    from repro.market.synthetic import VOLATILITY_CLASSES, synthetic_trace

    if scale == "bench":
        n_keys, n_epochs, batch_rounds, scalar_rounds = 452, 2200, 3, 2
    else:
        n_keys, n_epochs, batch_rounds, scalar_rounds = 32, 600, 2, 1
    config = DraftsConfig(probability=0.95)
    classes = list(VOLATILITY_CLASSES)
    traces = [
        synthetic_trace(
            classes[i % len(classes)], seed=900 + i, n_epochs=n_epochs
        )
        for i in range(n_keys)
    ]

    batch_s = []
    preds = None
    for _ in range(batch_rounds):
        start = time.perf_counter()
        fit = fit_drafts_universe(traces, config)
        preds = [fit.predictor(k) for k in range(n_keys)]
        batch_s.append(time.perf_counter() - start)
    scalar_s = []
    refs = None
    for _ in range(scalar_rounds):
        start = time.perf_counter()
        refs = [DraftsPredictor(trace, config) for trace in traces]
        scalar_s.append(time.perf_counter() - start)

    def fits_equal(ref, pred) -> bool:
        final_ok = ref._final_bound == pred._final_bound or (
            np.isnan(ref._final_bound) and np.isnan(pred._final_bound)
        )
        return (
            np.array_equal(ref._bounds, pred._bounds, equal_nan=True)
            and final_ok
            and list(ref.changepoints) == list(pred.changepoints)
            and np.array_equal(
                np.asarray(ref._ladder.levels),
                np.asarray(pred._ladder.levels),
            )
        )

    equivalent = all(fits_equal(r, p) for r, p in zip(refs, preds))
    return {
        "n_keys": n_keys,
        "n_epochs": n_epochs,
        "batch_best_s": round(min(batch_s), 3),
        "scalar_best_s": round(min(scalar_s), 3),
        "speedup": round(min(scalar_s) / min(batch_s), 2),
        "equivalent": equivalent,
    }


def _time_paper_table1() -> float:
    """Paper-scale sequential Table 1 wall-clock (the headline number)."""
    from repro.backtest import predcache
    from repro.baselines.ar1 import AR1Bid
    from repro.experiments.table1 import run_table1

    predcache.clear()
    AR1Bid.clear_prefit()
    start = time.perf_counter()
    run_table1(scale="paper", probability=0.99, workers=0)
    return time.perf_counter() - start


def _time_serving_refresh(scale: str) -> dict:
    from repro.serving.bench import ServingBenchConfig, run_refresh_benchmark

    return run_refresh_benchmark(ServingBenchConfig(scale=scale))


def _time_serving_slo(scale: str, n_requests: int) -> dict:
    from repro.serving.bench import SloBenchConfig, run_slo_benchmark

    return run_slo_benchmark(
        SloBenchConfig(
            scale=scale,
            n_requests=n_requests,
            rate=4000.0 if scale == "bench" else 1500.0,
            warmup_requests=max(50, min(1000, n_requests // 10)),
        )
    )


def _time_frontends(scale: str) -> dict:
    from repro.serving.bench import FrontendBenchConfig, run_frontend_benchmark

    return run_frontend_benchmark(FrontendBenchConfig(scale=scale))


def _time_scaling(scale: str) -> dict:
    from repro.serving.bench import ScalingBenchConfig, run_scaling_benchmark

    if scale == "bench":
        cfg = ScalingBenchConfig(scale=scale)
    else:
        cfg = ScalingBenchConfig(
            scale=scale, waves=2, n_requests=600, rate=4000.0
        )
    return run_scaling_benchmark(cfg)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scale",
        choices=("test", "bench"),
        default="bench",
        help="backtest scale (default: bench; 'test' for a smoke run)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_backtest.json",
        help="output path (default: BENCH_backtest.json at the repo root)",
    )
    parser.add_argument(
        "--serving-output",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_serving.json",
        help="serving-refresh output path (default: BENCH_serving.json)",
    )
    parser.add_argument(
        "--slo-requests",
        type=int,
        default=None,
        help="open-loop socket-replay stream length "
        "(default: 100000 at bench scale, 2000 at test scale)",
    )
    args = parser.parse_args()
    slo_requests = args.slo_requests or (
        100_000 if args.scale == "bench" else 2000
    )

    print(f"timing backtest_matrix(scale={args.scale!r}, workers=0) ...")
    cold_s, warm_s, cache = _time_backtest(args.scale)
    print(f"  cold: {cold_s:.2f} s   warm cache: {warm_s:.2f} s   {cache}")
    print("timing QBETS per-update latency ...")
    update_us = _time_qbets_updates()
    print(f"  {update_us:.2f} us/update")
    print("timing full-universe epoch tick vs scalar loop ...")
    tick = _time_universe_tick(args.scale)
    print(
        f"  {tick['n_keys']} keys: tick best {tick['tick_best_ms']:.2f} ms"
        f" p50 {tick['tick_p50_ms']:.2f} ms vs scalar "
        f"{tick['scalar_p50_ms']:.1f} ms (x{tick['speedup_p50']:.1f}); "
        f"curves {'bit-identical' if tick['equivalent'] else 'DIVERGED'}"
    )
    print("timing universe-wide batched phase-1 fit vs scalar loop ...")
    fit = _time_universe_fit(args.scale)
    print(
        f"  {fit['n_keys']} keys x {fit['n_epochs']} epochs: batch "
        f"{fit['batch_best_s']:.2f} s vs scalar {fit['scalar_best_s']:.2f} s"
        f" (x{fit['speedup']:.2f}); fits "
        f"{'bit-identical' if fit['equivalent'] else 'DIVERGED'}"
    )
    paper_table1_s = None
    if args.scale == "bench":
        print("timing paper-scale sequential Table 1 (the headline) ...")
        paper_table1_s = _time_paper_table1()
        print(f"  {paper_table1_s:.1f} s")

    report = {
        "scale": args.scale,
        "platform": platform.platform(),
        "measured": {
            "backtest_matrix_seq_s": round(cold_s, 3),
            "backtest_matrix_warm_cache_s": round(warm_s, 3),
            "qbets_update_mean_us": round(update_us, 3),
        },
        "universe_tick": tick,
        "universe_fit": fit,
        "predcache": cache,
    }
    if args.scale == "bench":
        report["measured"]["table1_paper_seq_s"] = round(paper_table1_s, 1)
        report["baseline"] = BASELINE
        report["speedup"] = {
            "backtest_matrix": round(
                BASELINE["backtest_matrix_bench_seq_s"] / cold_s, 2
            ),
            "qbets_update": round(
                BASELINE["qbets_update_mean_us"] / update_us, 2
            ),
            "universe_tick": tick["speedup_p50"],
            "universe_fit": fit["speedup"],
            "table1_paper": round(
                BASELINE["table1_paper_seq_s"] / paper_table1_s, 2
            ),
        }
        print(
            f"speedup vs baseline: matrix x{report['speedup']['backtest_matrix']}"
            f", qbets update x{report['speedup']['qbets_update']}, "
            f"paper Table 1 x{report['speedup']['table1_paper']}"
        )
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.output}")

    print("timing serving refresh (incremental vs full refit) ...")
    serving = _time_serving_refresh(args.scale)
    refresh = serving["refresh"]
    print(
        f"  steady p50: refit {refresh['refit']['steady']['p50'] * 1e3:.1f} ms"
        f" -> incremental {refresh['incremental']['steady']['p50'] * 1e3:.2f} ms"
        f" (x{refresh['speedup_steady_p50']:.1f}); curves "
        f"{'bit-identical' if refresh['equivalent'] else 'DIVERGED'}"
    )
    restart = serving["restart"]
    print(
        f"  warm restart: cold fit {restart['cold_fit_s']:.2f} s -> "
        f"snapshot restore {restart['restore_s'] * 1e3:.1f} ms "
        f"(x{restart['speedup']:.0f}, {restart['restore_refits']} refits); "
        f"curves {'identical' if restart['curves_identical'] else 'DIVERGED'}"
    )
    print(
        f"replaying {slo_requests} open-loop requests over a real socket ..."
    )
    slo_run = _time_serving_slo(args.scale, slo_requests)
    slo = slo_run["slo"]
    latency = slo["latency"]
    print(
        f"  p50 {latency['p50'] * 1e3:.2f} ms  p99 {latency['p99'] * 1e3:.2f} ms"
        f"  p99.9 {latency['p999'] * 1e3:.2f} ms  "
        f"offered {slo['offered_rps']:.0f} rps -> achieved "
        f"{slo['achieved_rps']:.0f} rps  shed {slo['shed_rate']:.2%}"
    )
    demo = slo_run["hedge_demo"]
    print(
        f"  hedge demo: p99.9 {demo['unhedged']['p999'] * 1e3:.1f} ms unhedged"
        f" -> {demo['hedged']['p999'] * 1e3:.1f} ms hedged "
        f"(x{demo['p999_improvement']:.1f}, "
        f"{demo['hedged']['hedges_launched']} hedges, "
        f"{demo['unhedged']['injected_spikes']} spikes)"
    )
    print("comparing HTTP front ends (threaded vs asyncio) ...")
    frontends = _time_frontends(args.scale)
    print(
        f"  threaded {frontends['threaded']['achieved_rps']:.0f} rps "
        f"p99 {frontends['threaded']['p99'] * 1e3:.1f} ms -> asyncio "
        f"{frontends['asyncio']['achieved_rps']:.0f} rps "
        f"p99 {frontends['asyncio']['p99'] * 1e3:.1f} ms "
        f"(x{frontends['achieved_ratio']:.2f} throughput, "
        f"p99 x{frontends['p99_ratio']:.2f})"
    )
    print("measuring the shard-routed scaling curve (fork-mode workers) ...")
    scaling = _time_scaling(args.scale)
    for n_shards, summary in sorted(
        scaling["routed"].items(), key=lambda kv: int(kv[0])
    ):
        print(
            f"  {n_shards} shard(s): {summary['achieved_rps']:.0f} rps "
            f"p99 {summary['p99'] * 1e3:.2f} ms "
            f"(x{summary['speedup']:.2f} vs direct "
            f"{scaling['direct']['achieved_rps']:.0f} rps)"
        )
    print(
        f"  gate [{scaling['gate']}]: {'ok' if scaling['ok'] else 'FAILED'}"
    )
    serving_report = {
        "scale": args.scale,
        "platform": platform.platform(),
        **serving,
        "slo": slo,
        "slo_drain": slo_run["drain"],
        "hedge_demo": demo,
        "frontends": frontends,
        "scaling": scaling,
    }
    args.serving_output.write_text(json.dumps(serving_report, indent=2) + "\n")
    print(f"wrote {args.serving_output}")
    if not tick["equivalent"]:
        raise AssertionError(
            "universe tick curves diverged from the scalar predictors"
        )
    if not fit["equivalent"]:
        raise AssertionError(
            "batched phase-1 fits diverged from the scalar predictors"
        )
    if not refresh["equivalent"]:
        raise AssertionError(
            "incremental refresh diverged from full refit curves"
        )
    if not restart["curves_identical"]:
        raise AssertionError(
            "snapshot-restored curves diverged from the cold fit"
        )
    if not demo["ok"]:
        raise AssertionError(
            "hedged p99.9 did not beat unhedged under seeded spikes"
        )
    if not frontends["ok"]:
        raise AssertionError(
            "asyncio front end did not reach 1.5x threaded achieved "
            "throughput at equal-or-better p99"
        )
    if not scaling["ok"]:
        raise AssertionError(
            f"shard-routed scaling gate failed: {scaling['gate']}"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
