"""Benchmark: the serving gateway vs the lazy inline-recompute baseline.

The paper's prototype recomputes asynchronously (a 15-minute cron) exactly
so client GETs never block on QBETS work. This benchmark quantifies that
design against the lazy alternative and verifies the subsystem's three
acceptance properties:

1. steady-state read p99 with background refresh is >= 10x lower than the
   lazy inline-recompute baseline under identical load;
2. K >= 8 concurrent cold misses on one key trigger exactly 1 recompute
   (request coalescing);
3. shed requests return 429 and the metrics snapshot accounts for every
   request (hits + stale-hits + misses + shed + errors == requests);
4. steady-state refresh of a warm key through delta-fed online predictors
   is >= 10x faster than the full-refit path, while publishing curves
   bit-identical to from-scratch fits at every refresh boundary;
5. warm restart from an on-disk snapshot is >= 5x faster than refitting
   the same keys cold, performs zero refits, and publishes curves
   bit-identical to the uninterrupted service — including after one
   further incremental refresh step.
"""

import pytest

from repro.serving.bench import ServingBenchConfig, run_serving_benchmark


@pytest.fixture(scope="module")
def serving_results():
    return run_serving_benchmark(
        ServingBenchConfig(
            scale="test",
            n_keys=4,
            n_requests=400,
            thread_counts=(1, 4, 16),
            coalesce_threads=8,
        )
    )


def test_stale_read_p99_beats_lazy_baseline(benchmark, serving_results):
    def report():
        return serving_results["latency"]

    latency = benchmark.pedantic(report, rounds=1, iterations=1)
    for n_threads, data in latency.items():
        benchmark.extra_info[f"baseline_p99_ms_{n_threads}t"] = round(
            data["baseline"]["p99"] * 1e3, 3
        )
        benchmark.extra_info[f"gateway_p99_ms_{n_threads}t"] = round(
            data["gateway"]["p99"] * 1e3, 3
        )
        benchmark.extra_info[f"gateway_rps_{n_threads}t"] = round(
            data["gateway_rps"]
        )
    # Acceptance (a): >= 10x p99 improvement at every thread count.
    for n_threads, data in latency.items():
        assert data["speedup_p99"] >= 10.0, (
            f"{n_threads} threads: gateway p99 {data['gateway']['p99']:.6f}s "
            f"not 10x better than baseline {data['baseline']['p99']:.6f}s"
        )


def test_concurrent_cold_misses_coalesce(serving_results):
    coalescing = serving_results["coalescing"]
    # Acceptance (b): K >= 8 concurrent misses, exactly one recompute.
    assert coalescing["k"] >= 8
    assert coalescing["statuses"] == [200] * coalescing["k"]
    assert coalescing["recomputes"] == 1
    assert coalescing["coalesced"] == coalescing["k"] - 1
    assert coalescing["misses"] == coalescing["k"]


def test_incremental_refresh_speedup_and_equivalence(benchmark, serving_results):
    def report():
        return serving_results["refresh"]

    refresh = benchmark.pedantic(report, rounds=1, iterations=1)
    benchmark.extra_info["refit_steady_p50_ms"] = round(
        refresh["refit"]["steady"]["p50"] * 1e3, 3
    )
    benchmark.extra_info["incremental_steady_p50_ms"] = round(
        refresh["incremental"]["steady"]["p50"] * 1e3, 3
    )
    benchmark.extra_info["speedup_steady_p50"] = round(
        refresh["speedup_steady_p50"], 2
    )
    # Acceptance (d): the incremental path must actually be used ...
    assert refresh["incremental"]["incremental_refreshes"] > 0
    assert refresh["incremental"]["refits"] < refresh["refit"]["refits"]
    # ... be >= 10x faster at steady state ...
    assert refresh["speedup_steady_p50"] >= 10.0, (
        f"steady-state incremental refresh only "
        f"{refresh['speedup_steady_p50']:.1f}x faster than full refit"
    )
    # ... and publish bit-identical curves at every refresh boundary.
    assert refresh["equivalent"]


def test_warm_restart_beats_cold_refit(benchmark, serving_results):
    def report():
        return serving_results["restart"]

    restart = benchmark.pedantic(report, rounds=1, iterations=1)
    benchmark.extra_info["cold_fit_ms"] = round(restart["cold_fit_s"] * 1e3, 1)
    benchmark.extra_info["restore_ms"] = round(restart["restore_s"] * 1e3, 1)
    benchmark.extra_info["restart_speedup"] = round(restart["speedup"], 1)
    # Acceptance (e): every key snapshotted and restored without error ...
    assert restart["loaded"] == restart["saved"] == restart["n_keys"]
    assert restart["load_errors"] == {}
    # ... served from restored state alone (zero refits: the cache hit at
    # the snapshot instant and the later refresh are both delta-fed) ...
    assert restart["restore_refits"] == 0
    # ... bit-identical to the uninterrupted service ...
    assert restart["curves_identical"]
    # ... and >= 5x faster than fitting the same keys cold.
    assert restart["speedup"] >= 5.0, (
        f"snapshot restore only {restart['speedup']:.1f}x faster than "
        f"cold refit ({restart['restore_s']:.3f}s vs "
        f"{restart['cold_fit_s']:.3f}s)"
    )


def test_shedding_and_metrics_accounting(serving_results):
    shedding = serving_results["shedding"]
    # Acceptance (c): overload sheds 429s and the books balance.
    assert shedding["shed"] > 0
    assert shedding["shed_have_retry_after"]
    assert shedding["accounting"]["balanced"]
    assert shedding["accounting"]["errors"] == 0
    for data in serving_results["latency"].values():
        assert data["accounting"]["balanced"]
        assert data["accounting"]["errors"] == 0
