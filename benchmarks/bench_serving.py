"""Benchmark: the serving gateway vs the lazy inline-recompute baseline.

The paper's prototype recomputes asynchronously (a 15-minute cron) exactly
so client GETs never block on QBETS work. This benchmark quantifies that
design against the lazy alternative and verifies the subsystem's three
acceptance properties:

1. steady-state read p99 with background refresh is >= 10x lower than the
   lazy inline-recompute baseline under identical load;
2. K >= 8 concurrent cold misses on one key trigger exactly 1 recompute
   (request coalescing);
3. shed requests return 429 and the metrics snapshot accounts for every
   request (hits + stale-hits + misses + shed + errors == requests).
"""

import pytest

from repro.serving.bench import ServingBenchConfig, run_serving_benchmark


@pytest.fixture(scope="module")
def serving_results():
    return run_serving_benchmark(
        ServingBenchConfig(
            scale="test",
            n_keys=4,
            n_requests=400,
            thread_counts=(1, 4, 16),
            coalesce_threads=8,
        )
    )


def test_stale_read_p99_beats_lazy_baseline(benchmark, serving_results):
    def report():
        return serving_results["latency"]

    latency = benchmark.pedantic(report, rounds=1, iterations=1)
    for n_threads, data in latency.items():
        benchmark.extra_info[f"baseline_p99_ms_{n_threads}t"] = round(
            data["baseline"]["p99"] * 1e3, 3
        )
        benchmark.extra_info[f"gateway_p99_ms_{n_threads}t"] = round(
            data["gateway"]["p99"] * 1e3, 3
        )
        benchmark.extra_info[f"gateway_rps_{n_threads}t"] = round(
            data["gateway_rps"]
        )
    # Acceptance (a): >= 10x p99 improvement at every thread count.
    for n_threads, data in latency.items():
        assert data["speedup_p99"] >= 10.0, (
            f"{n_threads} threads: gateway p99 {data['gateway']['p99']:.6f}s "
            f"not 10x better than baseline {data['baseline']['p99']:.6f}s"
        )


def test_concurrent_cold_misses_coalesce(serving_results):
    coalescing = serving_results["coalescing"]
    # Acceptance (b): K >= 8 concurrent misses, exactly one recompute.
    assert coalescing["k"] >= 8
    assert coalescing["statuses"] == [200] * coalescing["k"]
    assert coalescing["recomputes"] == 1
    assert coalescing["coalesced"] == coalescing["k"] - 1
    assert coalescing["misses"] == coalescing["k"]


def test_shedding_and_metrics_accounting(serving_results):
    shedding = serving_results["shedding"]
    # Acceptance (c): overload sheds 429s and the books balance.
    assert shedding["shed"] > 0
    assert shedding["shed_have_retry_after"]
    assert shedding["accounting"]["balanced"]
    assert shedding["accounting"]["errors"] == 0
    for data in serving_results["latency"].values():
        assert data["accounting"]["balanced"]
        assert data["accounting"]["errors"] == 0
