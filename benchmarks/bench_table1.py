"""Benchmark ``table1``: backtested correctness fractions (§4.1, Table 1).

Paper (452 combos, 300 requests, p = 0.99):

    DrAFTS        <0.99: 0.2%   0.99: 27.0%   1.0: 72.8%
    On-demand     <0.99: 37%    0.99: 12%     1.0: 51%
    AR(1)         <0.99: 29%    0.99: 17%     1.0: 54%
    Empirical-CDF <0.99: 6%     0.99: 62%     1.0: 32%

Shape preserved at bench scale: DrAFTS is the only method whose mean
correctness meets the target (its sub-target share stays near zero), the
On-demand bid fails on a large minority (and totally on premium-priced
pools), and the parametric/empirical baselines under-cover.
"""

import numpy as np

from repro.experiments.table1 import run_table1


def test_table1(run_once):
    result = run_once(run_table1, scale="bench", probability=0.99)
    print()
    print(result.render())

    table = result.table
    drafts = table.row("drafts")
    ondemand = table.row("ondemand")
    ar1 = table.row("ar1")
    ecdf = table.row("empirical-cdf")

    # DrAFTS: (almost) never below target, and when it is, barely.
    assert drafts.below_target <= 0.15
    drafts_fracs = [
        r.success_fraction for r in result.results if r.strategy == "drafts"
    ]
    assert float(np.mean(drafts_fracs)) >= 0.99
    assert min(drafts_fracs) >= 0.97  # the paper's one near-miss was 0.98

    # Every baseline misses the target on a much larger share of combos.
    for row in (ondemand, ar1, ecdf):
        assert row.below_target >= drafts.below_target + 0.15

    # The On-demand bid shows total failures (premium pools), like Fig. 1.
    od_fracs = [
        r.success_fraction for r in result.results if r.strategy == "ondemand"
    ]
    assert min(od_fracs) == 0.0
