"""Benchmark ``table5``: per-AZ cost optimisation at p = 0.95 (§4.4).

Paper: dropping the durability target from 0.99 to 0.95 increases savings
substantially (10 %-73 % per AZ vs 3 %-44 %): tighter bids go below
On-demand more often. Shape: Table 5's total savings exceed Table 4's.
"""

from repro.experiments.tables45 import run_table4, run_table5


def test_table5(run_once):
    result = run_once(run_table5, scale="bench")
    print()
    print(result.render())

    table = result.table
    assert table.probability == 0.95
    assert table.total_savings >= 0.10

    # The paper's probability/savings trade-off: 0.95 saves at least as
    # much as 0.99 in aggregate.
    t4 = run_table4(scale="bench").table
    print(
        f"total savings: p=0.99 {t4.total_savings:.2%} vs "
        f"p=0.95 {table.total_savings:.2%}"
    )
    assert table.total_savings >= t4.total_savings - 0.02
