"""Benchmark-suite configuration.

Each ``bench_*`` module regenerates one table or figure of the paper at the
``bench`` scale (every volatility class and every paper-named combination
present; fewer combinations/requests than paper scale — see DESIGN.md §3).
Experiments run once per benchmark (``rounds=1``): the interesting output is
the *artefact* (recorded into ``extra_info``), the wall time is secondary.

Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import pytest


@pytest.fixture()
def run_once(benchmark):
    """Run an experiment exactly once under the benchmark clock."""

    def runner(func, *args, **kwargs):
        return benchmark.pedantic(
            func, args=args, kwargs=kwargs, rounds=1, iterations=1
        )

    return runner
