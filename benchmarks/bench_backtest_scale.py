"""Benchmark: the full bench-scale backtest matrix (the Table 1 hot path).

This is the throughput benchmark behind the batched phase-2 kernels and the
predictor cache: one cold sequential sweep of the whole
(combination x strategy) matrix, then a warm re-run against the populated
predictor cache. The cold sweep is the number tracked in
``BENCH_backtest.json`` (see ``scripts/bench_trajectory.py``); the warm
re-run shows the cache's cross-experiment effect — every DrAFTS fit is
reused, leaving only the query/replay work.
"""

from __future__ import annotations

from repro.backtest import predcache
from repro.experiments.parallel import backtest_matrix


def test_backtest_matrix_cold(benchmark):
    predcache.clear()

    def run():
        predcache.clear()
        return backtest_matrix(scale="bench", probability=0.99, workers=0)

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    assert len(results) > 0
    info = predcache.cache_info()
    benchmark.extra_info["predcache"] = info
    # Tracked gate: the pre-optimisation sweep took ~64 s on the reference
    # machine; the batched kernels hold it well under a third of that.
    # Generous headroom for slower hardware. (stats is None in the
    # --benchmark-disable smoke run.)
    if benchmark.stats is not None:
        assert benchmark.stats["mean"] < 45.0


def test_backtest_matrix_warm_cache(benchmark):
    # Populate the cache once, outside the clock.
    predcache.clear()
    cold = backtest_matrix(scale="bench", probability=0.99, workers=0)

    warm = benchmark.pedantic(
        backtest_matrix,
        kwargs={"scale": "bench", "probability": 0.99, "workers": 0},
        rounds=1,
        iterations=1,
    )
    # Cache reuse must not change a single outcome.
    assert warm == cold
    info = predcache.cache_info()
    benchmark.extra_info["predcache"] = info
    assert info["hits"] > 0
