"""Ablation: the square-root probability split (§3.2).

DrAFTS splits the target probability p between its two phases as
``q_price = p**alpha``, ``q_duration = p**(1-alpha)``; the paper argues the
square root (alpha = 0.5) "strikes a good balance between keeping a bid low
and yielding a usable duration". This ablation sweeps alpha and verifies
both halves of that claim:

* small alpha -> lax price quantile -> the minimum bid is lower, but the
  duration phase must certify at a very high level, so the certified
  duration for the *minimum* bid collapses;
* large alpha -> the price bound alone carries the burden: bids rise.

Every alpha still meets the same overall durability target in backtest.
"""

import math

import numpy as np
import pytest

from repro.backtest.engine import BacktestConfig, run_backtest
from repro.baselines.drafts_strategy import DraftsBid
from repro.core.drafts import DraftsConfig, DraftsPredictor
from repro.experiments.common import scaled_universe

ALPHAS = (0.25, 0.5, 0.75)


@pytest.fixture(scope="module")
def spiky_combo():
    universe = scaled_universe("bench")
    combo = universe.combo("c3.2xlarge", "us-west-1a")
    return universe, combo


def test_alpha_sweep(benchmark, spiky_combo):
    universe, combo = spiky_combo
    trace = universe.trace(combo)
    t_idx = len(trace) - 1

    def sweep():
        rows = {}
        for alpha in ALPHAS:
            cfg = DraftsConfig(
                probability=0.95,
                alpha=alpha,
                max_price=max(100.0, float(trace.prices.max()) * 8),
            )
            predictor = DraftsPredictor(trace, cfg)
            min_bid = predictor.min_bid_at(t_idx)
            certified = predictor.duration_bound(min_bid, t_idx)
            rows[alpha] = (min_bid, certified)
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    for alpha, (bid, certified) in rows.items():
        cert_h = certified / 3600 if not math.isnan(certified) else float("nan")
        print(f"  alpha={alpha}: min bid=${bid:.4f}, certified {cert_h:.2f} h")

    bids = [rows[a][0] for a in ALPHAS]
    certified = [rows[a][1] for a in ALPHAS]
    # The minimum bid can only grow with alpha (the price phase carries
    # more of p)...
    assert bids == sorted(bids)
    # ...while the duration phase certifies at an ever stricter level, so
    # the duration guaranteed *at the minimum bid* shrinks. On markets with
    # a discrete plateau structure the bid may not move at all (both
    # quantile bounds land on the same plateau value) — then the whole
    # trade-off shows up in the certified durations.
    assert certified == sorted(certified, reverse=True)
    assert bids[-1] > bids[0] or certified[0] > certified[-1]


def test_every_alpha_meets_target(benchmark, spiky_combo):
    universe, combo = spiky_combo
    cfg = BacktestConfig(
        probability=0.95, n_requests=60,
        max_duration_hours=6, train_days=90, seed=3,
    )

    def backtest_all():
        fractions = {}
        for alpha in ALPHAS:
            class _AlphaBid(DraftsBid):
                @classmethod
                def for_combo(cls, combo, trace, probability):
                    config = DraftsConfig(
                        probability=probability,
                        alpha=alpha,
                        max_price=max(100.0, float(trace.prices.max()) * 8),
                    )
                    return cls(DraftsPredictor(trace, config))

            result = run_backtest(universe, combo, _AlphaBid, cfg)
            fractions[alpha] = result.success_fraction
        return fractions

    fractions = benchmark.pedantic(backtest_all, rounds=1, iterations=1)
    print()
    for alpha, fraction in fractions.items():
        print(f"  alpha={alpha}: success={fraction:.3f}")
        assert fraction >= 0.95 - 2 / 60
