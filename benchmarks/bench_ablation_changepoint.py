"""Ablation: QBETS change-point detection (§3.1).

On a regime-switching series, change-point truncation is what lets the
bound *come back down* after a high regime ends: without it, one early
expensive regime pins the bid high for the remaining months (pure money
wasted), while coverage is conservative either way. This ablation
quantifies the effect the paper's design argument predicts.
"""

import numpy as np
import pytest

from repro.core.qbets import QBETS, QBETSConfig
from repro.util.rng import RngFactory


@pytest.fixture(scope="module")
def regime_series():
    """High regime for 20 days, then low for 40 days."""
    rng = RngFactory(77).generator("ablation/changepoint")
    high = rng.normal(1.0, 0.01, size=20 * 288).clip(min=0.01)
    low = rng.normal(0.2, 0.002, size=40 * 288).clip(min=0.01)
    return np.concatenate([high, low])


def _final_bound(series, changepoint):
    qb = QBETS(
        QBETSConfig(q=0.975, c=0.99, changepoint=changepoint)
    )
    qb.bound_series(series)
    return qb.bound, len(qb.changepoints)


def test_changepoint_lets_bound_recover(benchmark, regime_series):
    def run_both():
        with_cp = _final_bound(regime_series, changepoint=True)
        without_cp = _final_bound(regime_series, changepoint=False)
        return with_cp, without_cp

    (with_cp, without_cp) = benchmark.pedantic(run_both, rounds=1, iterations=1)
    bound_on, fired = with_cp
    bound_off, fired_off = without_cp
    print()
    print(f"  with change points:    bound={bound_on:.4f} ({fired} fired)")
    print(f"  without change points: bound={bound_off:.4f} ({fired_off} fired)")

    assert fired >= 1
    assert fired_off == 0
    # After 40 days in the low regime, the adaptive bound tracks it...
    assert bound_on < 0.5
    # ...while the ablated one still reflects the dead high regime: with
    # 20 of 60 days at the high level, the 0.975-quantile bound stays high.
    assert bound_off > 0.9
    # Money saved by adaptation: the bid ratio is the wasted-risk ratio.
    assert bound_off / bound_on > 2.0
