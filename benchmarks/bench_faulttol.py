"""Extension benchmark: checkpointing strategies on a volatile pool (§5).

Head-to-head of the related-work fault-tolerance recipes against
DrAFTS-informed execution for a 12-hour batch job (see
``examples/long_job_checkpointing.py``):

* the naive lose-it-all baseline pays for redone work;
* the reactive Young-Daly policy pays steady checkpoint overhead;
* DrAFTS sizes the bid so the certified horizon covers the job and
  banks the work once near its end.

Asserted shape: every strategy completes; DrAFTS achieves the best
efficiency (productive fraction of the makespan) with the fewest restarts
and no more checkpoints than the periodic policy.
"""

import pytest

from repro.faulttol import (
    make_drafts_executor,
    make_naive_executor,
    make_reactive_executor,
)
from repro.market.synthetic import generate_trace

ONDEMAND = 0.84
WORK = 12 * 3600.0


@pytest.fixture(scope="module")
def pool():
    trace = generate_trace(
        "volatile", ONDEMAND, n_epochs=80 * 288, rng=11
    )
    start = trace.start + 60 * 86400.0
    return trace, start


def test_checkpoint_strategies(benchmark, pool):
    trace, start = pool

    def run_all():
        return {
            "naive": make_naive_executor(trace, ONDEMAND).run(start, WORK),
            "reactive": make_reactive_executor(trace, ONDEMAND, start).run(
                start, WORK
            ),
            "drafts": make_drafts_executor(trace, total_work=WORK).run(
                start, WORK
            ),
        }

    reports = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print()
    for name, r in reports.items():
        print(
            f"  {name:9s} done={r.completed} makespan={r.makespan / 3600:.1f}h "
            f"cost=${r.cost:.2f} restarts={r.restarts} ckpts={r.checkpoints} "
            f"lost={r.work_lost / 3600:.2f}h eff={r.efficiency:.0%}"
        )

    for name, r in reports.items():
        assert r.completed, name
    drafts, reactive, naive = (
        reports["drafts"],
        reports["reactive"],
        reports["naive"],
    )
    assert drafts.efficiency >= reactive.efficiency - 1e-9
    assert drafts.efficiency >= naive.efficiency - 1e-9
    assert drafts.restarts <= min(reactive.restarts, naive.restarts)
    assert drafts.checkpoints <= reactive.checkpoints
    assert drafts.work_lost <= naive.work_lost + 1e-6
