"""Benchmark ``table2``: the workload replay cost comparison (§4.3).

Paper (366 instances, 1000 jobs, both policies zero terminations):

    Original (80% On-demand)   cost $106.10   max-bid cost $176.98
    DrAFTS Bid                 cost  $91.78   max-bid cost  $98.60

Shape: DrAFTS reduces the realised cost (smarter AZ/tier selection) and
cuts the worst-case ("risked") cost much more, while completing the same
workload.
"""

from repro.experiments.tables23 import run_table2


def test_table2(run_once):
    result = run_once(run_table2, scale="bench")
    print()
    print(result.render())

    original, drafts = result.original, result.drafts
    assert original.jobs_completed == drafts.jobs_completed
    # DrAFTS costs less...
    assert drafts.cost < original.cost
    # ...and risks much less (paper: 1.8x; ours is typically larger
    # because the class mix is harsher — require at least 1.5x).
    assert original.max_bid_cost / drafts.max_bid_cost >= 1.5
    # DrAFTS at p=0.99 sees (almost) no terminations.
    assert drafts.terminations <= 1
