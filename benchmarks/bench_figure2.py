"""Benchmark ``figure2``: launch series, c4.large/us-east-1 (§4.2).

Paper: 100 launches at p = 0.95, one week, AZ chosen by lowest predicted
bound — all 100 succeeded (the combination backtests conservatively at
0.95). Bench scale: 60 launches; we require a success rate consistent with
the conservative behaviour the paper reports (at most one failure).
"""

from repro.experiments.figures23 import run_figure2


def test_figure2(run_once):
    result = run_once(run_figure2, scale="bench")
    series = result.series
    print()
    print(
        f"launches={len(series.records)} failures={series.failures} "
        f"success={series.success_fraction:.3f} "
        f"bid range=[{series.bids.min():.4f}, {series.bids.max():.4f}]"
    )
    assert len(series.records) >= 40
    assert series.failures <= 1
    # Bids stay far below the On-demand price of c4.large ($0.10).
    assert series.bids.max() < 0.10
