"""Benchmark ``table3``: multi-replay simulator averages (§4.3).

Paper (35 simulated replays):

    Original           226.4 inst   $69.83   risk $219.69   term 0
    DrAFTS (1-hr)      225.4 inst   $66.39   risk  $85.08   term 0.24
    DrAFTS (profiles)  228.5 inst   $66.36   risk  $79.29   term 1.03

Shape: both DrAFTS variants cost slightly less and risk >2x less than the
original rule; the profile-driven variant bids tighter than the 1-hour one
(equal or lower risk, possibly more terminations).
"""

from repro.experiments.tables23 import run_table3


def test_table3(run_once):
    result = run_once(run_table3, scale="bench")
    print()
    print(result.render())

    avg = result.averages()
    original = avg["original"]
    one_hour = avg["drafts-1hr"]
    profiles = avg["drafts-profiles"]

    # Costs: DrAFTS at or below the original policy.
    assert one_hour["cost"] <= original["cost"] * 1.02
    assert profiles["cost"] <= original["cost"] * 1.02
    # Risk: reduced by more than a factor of 2 (the paper's 2.6x).
    assert original["max_bid_cost"] / one_hour["max_bid_cost"] >= 2.0
    # Profiles bid at least as tight as the 1-hour rule.
    assert profiles["max_bid_cost"] <= one_hour["max_bid_cost"] * 1.05
    # Instance counts comparable across policies (same workload).
    assert abs(one_hour["instances"] - original["instances"]) <= (
        0.25 * original["instances"]
    )
    # DrAFTS terminations stay tiny at p=0.99 (paper: 0.24-1.03 per ~226).
    assert one_hour["terminations"] <= 2.0
