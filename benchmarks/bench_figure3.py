"""Benchmark ``figure3``: launch series, c3.2xlarge/us-west-1 (§4.2).

Paper: the less conservative combination at p = 0.95 recorded 4 failures in
~100 launches — *back to back* (autocorrelated prices cluster failures),
one of them a launch rejection. Bench scale: the failure count must stay
consistent with the 0.95 target (failures happen but remain bounded), and
when multiple failures occur they must show clustering.
"""

from repro.experiments.figures23 import run_figure3


def test_figure3(run_once):
    result = run_once(run_figure3, scale="bench")
    series = result.series
    runs = series.failure_runs()
    print()
    print(
        f"launches={len(series.records)} failures={series.failures} "
        f"success={series.success_fraction:.3f} failure runs={runs}"
    )
    assert len(series.records) >= 40
    # Consistent with p=0.95: not perfect-by-construction, not collapsing.
    assert series.success_fraction >= 0.85
    if series.failures >= 3:
        # Clustering: strictly fewer runs than failures means back-to-back
        # failures occurred, the paper's autocorrelation signature.
        assert len(runs) < series.failures
