"""Benchmark: the universe-wide batched phase-1 fit vs the scalar loop.

Every sweep (Table 1/4/5, the serving tier's cold boot) starts by fitting
phase 1 — the QBETS bound series, change-point decisions and bid-ladder
construction over each combination's full price history. The scalar path
constructs one :class:`~repro.core.drafts.DraftsPredictor` per combination,
replaying each history through per-key Python update chains;
:func:`~repro.core.universe_fit.fit_drafts_universe` holds every key's
quantile-tracker, detector and recent-window state as structure-of-arrays
and sweeps the whole (keys x epochs) price matrix one epoch column at a
time.

Acceptance, verified here at the full study-universe width (452 keys, one
bench-scale history each):

1. the batch fit plus per-key predictor handoff is >= 5x faster than the
   scalar per-key construction loop (best-of-rounds on both sides — this
   1-vCPU box has a heavy scheduler-noise tail, so the minimum is the
   honest estimator of compute cost; the batch-plus-materialised-ladders
   time is recorded alongside in ``extra_info``);
2. the handed-off predictors are bit-identical to the scalar fits: bound
   series, final bounds, change points, ladder levels, and sampled
   ``bid_for`` queries — the speed is a pure optimisation, never a
   numerical shortcut.
"""

from __future__ import annotations

import gc
import math
import time

import numpy as np
import pytest

from repro.core.drafts import DraftsConfig, DraftsPredictor
from repro.core.universe_fit import fit_drafts_universe
from repro.market.synthetic import VOLATILITY_CLASSES, synthetic_trace

#: The full study universe: every (type, zone) combination the paper's
#: DrAFTS deployment tracked, at one probability level.
N_KEYS = 452
#: History length per key (the bench scale; paper scale is ~43k epochs).
N_EPOCHS = 2200
#: Timing rounds per side; the minimum over rounds gates.
BATCH_ROUNDS = 3
SCALAR_ROUNDS = 2
#: Bid queries for the post-run equivalence sweep (one unsatisfiable).
DURATIONS = (1800.0, 3600.0, 6 * 3600.0, 86400.0, 1e12)
#: The gate: batch fit at least this many times faster than scalar.
MIN_SPEEDUP = 5.0

CONFIG = DraftsConfig(probability=0.95)


def _nan_eq(a: float, b: float) -> bool:
    return a == b or (math.isnan(a) and math.isnan(b))


@pytest.fixture(scope="module")
def fit_results():
    classes = list(VOLATILITY_CLASSES)
    traces = [
        synthetic_trace(
            classes[i % len(classes)], seed=900 + i, n_epochs=N_EPOCHS
        )
        for i in range(N_KEYS)
    ]

    def batch_once():
        start = time.perf_counter()
        fit = fit_drafts_universe(traces, CONFIG)
        preds = [fit.predictor(k) for k in range(N_KEYS)]
        return time.perf_counter() - start, preds

    def scalar_once():
        start = time.perf_counter()
        preds = [DraftsPredictor(trace, CONFIG) for trace in traces]
        return time.perf_counter() - start, preds

    batch_s: list[float] = []
    scalar_s: list[float] = []
    preds = refs = None
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(BATCH_ROUNDS):
            elapsed, preds = batch_once()
            batch_s.append(elapsed)
        # Honesty check: the backtest driver only reads ``levels`` off a
        # batch predictor, so its ladder is lazy — time the full
        # materialisation too, so the recorded numbers cover the scalar
        # query path as well.
        start = time.perf_counter()
        for pred in preds:
            pred._ladder.n_samples
        materialise_s = time.perf_counter() - start
        for _ in range(SCALAR_ROUNDS):
            elapsed, refs = scalar_once()
            scalar_s.append(elapsed)
    finally:
        if gc_was_enabled:
            gc.enable()

    mismatches: list[str] = []
    for k in range(N_KEYS):
        ref, pred = refs[k], preds[k]
        if not np.array_equal(ref._bounds, pred._bounds, equal_nan=True):
            mismatches.append(f"key {k}: bound series")
        if not _nan_eq(ref._final_bound, pred._final_bound):
            mismatches.append(f"key {k}: final bound")
        if list(ref.changepoints) != list(pred.changepoints):
            mismatches.append(f"key {k}: change points")
        if not np.array_equal(
            np.asarray(ref._ladder.levels), np.asarray(pred._ladder.levels)
        ):
            mismatches.append(f"key {k}: ladder levels")
    for k in range(0, N_KEYS, 37):  # sampled keys, every duration
        for t_idx in (N_EPOCHS // 2, N_EPOCHS - 1):
            for duration in DURATIONS:
                if not _nan_eq(
                    refs[k].bid_for(duration, t_idx),
                    preds[k].bid_for(duration, t_idx),
                ):
                    mismatches.append(
                        f"key {k}: bid_for({duration}, {t_idx})"
                    )

    return {
        "n_keys": N_KEYS,
        "n_epochs": N_EPOCHS,
        "batch_best_s": min(batch_s),
        "batch_materialise_s": min(batch_s) + materialise_s,
        "scalar_best_s": min(scalar_s),
        "speedup": min(scalar_s) / min(batch_s),
        "mismatches": mismatches,
    }


def test_batch_fit_beats_scalar_5x(benchmark, fit_results):
    def report():
        return fit_results

    results = benchmark.pedantic(report, rounds=1, iterations=1)
    benchmark.extra_info["n_keys"] = results["n_keys"]
    benchmark.extra_info["n_epochs"] = results["n_epochs"]
    benchmark.extra_info["batch_best_s"] = round(results["batch_best_s"], 3)
    benchmark.extra_info["batch_materialise_s"] = round(
        results["batch_materialise_s"], 3
    )
    benchmark.extra_info["scalar_best_s"] = round(results["scalar_best_s"], 3)
    benchmark.extra_info["speedup"] = round(results["speedup"], 2)
    # Acceptance (1): >= 5x over the scalar per-key construction loop.
    assert results["speedup"] >= MIN_SPEEDUP, (
        f"batched fit only {results['speedup']:.2f}x faster than the "
        f"scalar loop ({results['batch_best_s']:.2f} s vs "
        f"{results['scalar_best_s']:.2f} s best-of-rounds at "
        f"{results['n_keys']} keys x {results['n_epochs']} epochs)"
    )


def test_fit_output_is_bit_identical_to_scalar(fit_results):
    # Acceptance (2): same bounds, change points, ladders and bids,
    # to the bit.
    assert fit_results["mismatches"] == []
