"""Benchmark ``figure1``: ECDF of sub-target On-demand correctness (§4.1.2).

Paper: a wide spread of sub-0.99 correctness fractions when bidding the
On-demand price, *including zeros* — combinations whose Spot price sat
permanently above On-demand (cg1.4xlarge). The reproduction checks the same
spread and the zero-fraction phenomenon.
"""

from repro.experiments.figure1 import run_figure1


def test_figure1(run_once):
    result = run_once(run_figure1, scale="bench", probability=0.99)
    print()
    print(result.render())

    # A material share of combinations falls below target...
    assert len(result.fractions) >= 3
    # ...including total failures (the premium class).
    assert result.has_zero_fraction
    # The ECDF is a valid distribution function over [0, 1).
    assert all(0.0 <= x < 0.99 for x in result.ecdf_x)
    assert list(result.ecdf_y) == sorted(result.ecdf_y)
    assert abs(result.ecdf_y[-1] - 1.0) < 1e-9
