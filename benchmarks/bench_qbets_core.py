"""Benchmark: QBETS online-update throughput (§3.3's performance claim).

The paper: "In a production setting, the predictor state can be updated
incrementally (in a few milliseconds) whenever a new price data point is
available." The Fenwick-backed implementation must meet that comfortably.
This benchmark measures true per-update latency (many rounds, unlike the
experiment benches).
"""

import numpy as np
import pytest

from repro.core.qbets import QBETS, QBETSConfig
from repro.market.synthetic import generate_trace


@pytest.fixture(scope="module")
def warm_predictor():
    """A QBETS instance pre-loaded with three months of prices."""
    trace = generate_trace("volatile", 0.42, n_epochs=26_000, rng=3)
    qb = QBETS(QBETSConfig(q=0.975, c=0.99))
    qb.bound_series(trace.prices)
    tail = generate_trace("volatile", 0.42, n_epochs=4000, rng=4)
    return qb, tail.prices


def test_online_update_latency(benchmark, warm_predictor):
    qb, updates = warm_predictor
    stream = iter(np.tile(updates, 50))

    def one_update():
        qb.update(float(next(stream)))

    benchmark(one_update)
    # "A few milliseconds": require well under 2 ms per update. (stats is
    # None in the --benchmark-disable smoke run.)
    if benchmark.stats is not None:
        assert benchmark.stats["mean"] < 2e-3


def test_three_month_fit_time(benchmark):
    """Fitting a full 3-month history (the paper quotes ~2 minutes on 2016
    server hardware for its research prototype; the incremental
    implementation is far faster)."""
    trace = generate_trace("spiky", 0.42, n_epochs=26_000, rng=5)

    def fit():
        qb = QBETS(QBETSConfig(q=0.975, c=0.99))
        qb.bound_series(trace.prices)
        return qb.bound

    bound = benchmark.pedantic(fit, rounds=3, iterations=1)
    assert bound > 0
    if benchmark.stats is not None:
        assert benchmark.stats["mean"] < 30.0


def test_online_drafts_update_latency(benchmark):
    """The full online DrAFTS predictor (QBETS + ladder bookkeeping) must
    also stay far inside the paper's few-millisecond budget per
    announcement."""
    from repro.core.drafts import DraftsConfig
    from repro.core.online import OnlineDraftsPredictor

    warm = generate_trace("spiky", 0.42, n_epochs=10_000, rng=9)
    online = OnlineDraftsPredictor(DraftsConfig(probability=0.95))
    online.extend(warm.times, warm.prices)
    tail = generate_trace("spiky", 0.42, n_epochs=4000, rng=10)
    clock = {"t": float(warm.times[-1])}
    prices = iter(np.tile(tail.prices, 50))

    def one_update():
        clock["t"] += 300.0
        online.observe(clock["t"], float(next(prices)))

    benchmark(one_update)
    if benchmark.stats is not None:
        assert benchmark.stats["mean"] < 2e-3
