"""Benchmark ``figure4``: the bid–duration relationship (§4.3, Figure 4).

Paper: guaranteed duration grows monotonically with the bid for c3.4xlarge
in us-east-1 — from near zero at the minimum bid to many hours near the top
of the ladder. The reproduction checks monotonicity and a materially
increasing trade-off (the top rung buys several times the duration of the
bottom one).
"""

import math

from repro.experiments.figure4 import run_figure4


def test_figure4(run_once):
    result = run_once(run_figure4, scale="bench")
    print()
    print(result.render())

    curve = result.curve
    finite = [d for d in curve.durations if not math.isnan(d)]
    assert len(finite) >= 10
    # Monotone non-decreasing durations along the bid ladder.
    assert all(b >= a - 1e-9 for a, b in zip(finite, finite[1:]))
    # The trade-off is material: paying up multiplies the guarantee.
    positive = [d for d in finite if d > 0]
    assert positive, "no rung guarantees any duration"
    assert max(finite) >= 4 * min(positive)
    # The ladder covers the service's advertised 4x span in 5% rungs.
    assert curve.bids[-1] / curve.bids[0] >= 3.5
