"""Ablation: ESS correction vs the Monte-Carlo correction table (§3.1).

The original QBETS ships a simulation-built table mapping lag-1
autocorrelation to corrected rare-event order statistics; this
reproduction's default is the analytic effective-sample-size (ESS)
correction (DESIGN.md §4.4). This ablation quantifies the trade:

* both corrections keep next-step exceedance within the nominal budget on
  a sticky series;
* the table is *tighter* — it prices the dependence exactly instead of
  discounting the whole sample — so DrAFTS bids built on it are lower for
  the same guarantee.
"""

import numpy as np
import pytest

from repro.core.qbets import QBETS, QBETSConfig
from repro.util.rng import RngFactory


@pytest.fixture(scope="module")
def sticky_series():
    rng = RngFactory(31).generator("ablation/artable")
    levels = rng.lognormal(-2.0, 0.5, size=1200)
    return np.repeat(levels, 12)


def _run(series, mode):
    qb = QBETS(
        QBETSConfig(
            q=0.95,
            c=0.95,
            changepoint=False,
            autocorr_mode=mode,
            artable_trials=800,
        )
    )
    bounds = qb.bound_series(series)
    valid = ~np.isnan(bounds)
    exceed = float(np.mean(series[valid] > bounds[valid]))
    mean_bound = float(np.nanmean(bounds))
    return exceed, mean_bound, qb.bound


def test_table_correction_tighter_at_same_coverage(benchmark, sticky_series):
    def run_both():
        return _run(sticky_series, "ess"), _run(sticky_series, "table")

    (ess, table) = benchmark.pedantic(run_both, rounds=1, iterations=1)
    exceed_ess, mean_ess, final_ess = ess
    exceed_tab, mean_tab, final_tab = table
    print()
    print(f"  ESS:   exceed={exceed_ess:.4f} mean bound={mean_ess:.4f}")
    print(f"  table: exceed={exceed_tab:.4f} mean bound={mean_tab:.4f}")

    # Both respect the 1 - q = 5% budget (with sampling slack).
    assert exceed_ess <= 0.065
    assert exceed_tab <= 0.065
    # The table prices dependence exactly: never looser, typically tighter.
    assert final_tab <= final_ess + 1e-12
    assert mean_tab <= mean_ess * 1.001
