"""Benchmark ``table4``: per-AZ cost optimisation at p = 0.99 (§4.4).

Paper: savings of 3.3 %-44 % per AZ over pure On-demand (varying with the
AZ's volatility mix), total strictly positive everywhere. Shape: the
min(DrAFTS, On-demand) strategy saves a material fraction in every AZ and
never pays (meaningfully) more than On-demand.
"""

from repro.experiments.tables45 import run_table4


def test_table4(run_once):
    result = run_once(run_table4, scale="bench")
    print()
    print(result.render())

    table = result.table
    assert table.probability == 0.99
    assert len(table.rows) >= 6  # most of the nine AZs present at bench scale
    for row in table.rows:
        # The strategy can only improve on On-demand (small tolerance for
        # the rare terminated-then-retried request).
        assert row.savings >= -0.02
    # Aggregate savings are material (paper: 3%-44% per AZ).
    assert table.total_savings >= 0.10
    # Savings vary considerably by AZ (paper's observation).
    savings = [r.savings for r in table.rows]
    assert max(savings) - min(savings) >= 0.05
