"""Benchmark ``tightness``: bid-to-market ratio (§4.4 / tech report).

The paper's technical-report companion reports per-combination averages of
the DrAFTS bid over the realised market price between 4.8x and 7.5x. The
reproduction's overall mean must land in the same regime, with the expected
per-class ordering (premium pools are tight by construction; volatile ones
force large safety margins).
"""

from repro.experiments.tightness import run_tightness


def test_tightness(run_once):
    result = run_once(run_tightness, scale="bench")
    print()
    print(result.render())

    by_class = result.by_class()
    # Overall mean in the paper's order of magnitude.
    assert 2.0 <= result.mean_ratio <= 15.0
    # Premium pools: the bid hugs the market (ratio near 1).
    assert by_class["premium"] < 1.5
    # Volatile pools demand the largest safety margin.
    assert by_class["volatile"] == max(by_class.values())
    # Calm pools sit in between.
    assert by_class["premium"] < by_class["calm"] < by_class["volatile"]
