"""Benchmark: the universe-wide vectorised epoch tick vs the scalar loop.

The serving tier's steady-state work is one *epoch tick*: every enrolled
(instance type, zone, probability) key receives its new price announcement
and republishes its bid/duration curve. The scalar path does that as a
Python loop over :class:`~repro.core.online.OnlineDraftsPredictor`; the
:class:`~repro.core.universe.UniverseTicker` holds the same QBETS + ladder
state for all keys as structure-of-arrays and advances the whole universe
with a handful of vectorised kernels per tick.

Acceptance, verified here at the full study-universe width (452 keys):

1. the steady-state epoch tick completes in <= 10 ms (best-observed tick:
   on this 1-vCPU box the latency distribution has a heavy scheduler-noise
   tail, so the minimum is the honest estimator of compute cost — p50 and
   p90 are recorded alongside in ``extra_info``);
2. the tick is >= 10x faster than the scalar observe+curve loop over the
   same keys at the same epochs (p50 vs p50);
3. the curves and bid queries the ticker publishes after the measured run
   are bit-identical to the scalar predictors' — the speed is a pure
   optimisation, never a numerical shortcut.
"""

from __future__ import annotations

import gc
import math
import time

import numpy as np
import pytest

from repro.core.drafts import DraftsConfig
from repro.core.online import OnlineDraftsPredictor
from repro.core.universe import UniverseTicker
from repro.market.synthetic import VOLATILITY_CLASSES, synthetic_trace

#: The full study universe: every (type, zone) combination the paper's
#: DrAFTS deployment tracked, at one probability level.
N_KEYS = 452
#: Warm-up epochs before timing starts (ladders anchored, buffers sized).
WARM = 600
#: Timed steady-state epochs for the batched tick.
MEAS = 96
#: Timed epochs for the scalar loop (each costs ~0.2 s at 452 keys).
SCALAR_MEAS = 12
#: Bid queries for the post-run equivalence sweep (one unsatisfiable).
DURATIONS = (1800.0, 3600.0, 6 * 3600.0, 86400.0, 1e12)

CONFIG = DraftsConfig(probability=0.95)


def _curves_equal(a, b) -> bool:
    if a is None or b is None:
        return a is b
    if a.bids != b.bids:
        return False
    if (a.probability, a.computed_at) != (b.probability, b.computed_at):
        return False
    return all(
        x == y or (math.isnan(x) and math.isnan(y))
        for x, y in zip(a.durations, b.durations)
    )


@pytest.fixture(scope="module")
def tick_results():
    n_epochs = WARM + MEAS
    classes = list(VOLATILITY_CLASSES)
    keys = [f"k{i}" for i in range(N_KEYS)]
    prices = np.empty((N_KEYS, n_epochs))
    times = None
    for i in range(N_KEYS):
        trace = synthetic_trace(
            classes[i % len(classes)], seed=1000 + i, n_epochs=n_epochs
        )
        prices[i] = np.asarray(trace.prices)
        if times is None:
            times = np.asarray(trace.times, dtype=float)

    ticker = UniverseTicker(CONFIG)
    for key in keys:
        ticker.add_key(key, instance_type="m4.large", zone="us-east-1a")
    for t in range(WARM):
        ticker.tick(float(times[t]), prices[:, t])
    batch_ms = np.empty(MEAS)
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for j, t in enumerate(range(WARM, n_epochs)):
            start = time.perf_counter()
            ticker.tick(float(times[t]), prices[:, t])
            batch_ms[j] = (time.perf_counter() - start) * 1e3
    finally:
        if gc_was_enabled:
            gc.enable()

    # The scalar reference loop over the identical workload: observe-only
    # through the warm epochs (with periodic curve calls so the incremental
    # ladders stay anchored the way a live service keeps them), then the
    # timed epochs run the full per-key observe + curve republish.
    scalars = [OnlineDraftsPredictor(CONFIG) for _ in keys]
    scalar_from = n_epochs - SCALAR_MEAS
    for t in range(scalar_from):
        for i in range(N_KEYS):
            scalars[i].observe(float(times[t]), float(prices[i, t]))
        if t % 16 == 0:
            for scalar in scalars:
                scalar.curve()
    scalar_ms = np.empty(SCALAR_MEAS)
    gc.disable()
    try:
        for j, t in enumerate(range(scalar_from, n_epochs)):
            start = time.perf_counter()
            for i in range(N_KEYS):
                scalars[i].observe(float(times[t]), float(prices[i, t]))
                scalars[i].curve()
            scalar_ms[j] = (time.perf_counter() - start) * 1e3
    finally:
        if gc_was_enabled:
            gc.enable()

    # Both paths have now consumed exactly the same announcements.
    curve_mismatches = [
        key
        for i, key in enumerate(keys)
        if not _curves_equal(ticker.curve_for(key), scalars[i].curve())
    ]
    bid_mismatches = []
    for i in range(0, N_KEYS, 37):  # sampled keys, every duration
        for duration in DURATIONS:
            got = ticker.bid_for(keys[i], duration)
            ref = scalars[i].bid_for(duration)
            if not (got == ref or (math.isnan(got) and math.isnan(ref))):
                bid_mismatches.append((keys[i], duration))

    return {
        "n_keys": N_KEYS,
        "batch_best_ms": float(batch_ms.min()),
        "batch_p50_ms": float(np.percentile(batch_ms, 50)),
        "batch_p90_ms": float(np.percentile(batch_ms, 90)),
        "scalar_p50_ms": float(np.percentile(scalar_ms, 50)),
        "speedup_p50": float(
            np.percentile(scalar_ms, 50) / np.percentile(batch_ms, 50)
        ),
        "curve_mismatches": curve_mismatches,
        "bid_mismatches": bid_mismatches,
    }


def test_full_universe_tick_meets_latency_budget(benchmark, tick_results):
    def report():
        return tick_results

    results = benchmark.pedantic(report, rounds=1, iterations=1)
    benchmark.extra_info["n_keys"] = results["n_keys"]
    benchmark.extra_info["tick_best_ms"] = round(results["batch_best_ms"], 3)
    benchmark.extra_info["tick_p50_ms"] = round(results["batch_p50_ms"], 3)
    benchmark.extra_info["tick_p90_ms"] = round(results["batch_p90_ms"], 3)
    # Acceptance (1): full-universe steady-state tick within 10 ms.
    assert results["batch_best_ms"] <= 10.0, (
        f"best steady-state tick {results['batch_best_ms']:.2f} ms over "
        f"the 10 ms budget at {results['n_keys']} keys"
    )


def test_tick_beats_scalar_loop_10x(benchmark, tick_results):
    def report():
        return tick_results

    results = benchmark.pedantic(report, rounds=1, iterations=1)
    benchmark.extra_info["scalar_p50_ms"] = round(results["scalar_p50_ms"], 1)
    benchmark.extra_info["speedup_p50"] = round(results["speedup_p50"], 1)
    # Acceptance (2): >= 10x over the scalar observe+curve loop.
    assert results["speedup_p50"] >= 10.0, (
        f"batched tick only {results['speedup_p50']:.1f}x faster than the "
        f"scalar loop ({results['batch_p50_ms']:.2f} ms vs "
        f"{results['scalar_p50_ms']:.1f} ms at p50)"
    )


def test_tick_output_is_bit_identical_to_scalars(tick_results):
    # Acceptance (3): same curves, same bids, to the bit.
    assert tick_results["curve_mismatches"] == []
    assert tick_results["bid_mismatches"] == []
