"""Ablation: the autocorrelation compensation (§3.1).

QBETS's binomial argument assumes independent observations; Spot prices are
sticky. On a strongly autocorrelated series, the uncorrected bound's
next-step exceedance rate can drift above the nominal ``1 - q`` while the
effective-sample-size correction keeps the bound conservative (at the price
of bidding slightly higher). This ablation measures both sides.
"""

import numpy as np
import pytest

from repro.core.qbets import QBETS, QBETSConfig
from repro.util.rng import RngFactory


@pytest.fixture(scope="module")
def sticky_series():
    """A block-sticky lognormal series: each level persists ~25 epochs."""
    rng = RngFactory(13).generator("ablation/autocorr")
    levels = rng.lognormal(-2.0, 0.5, size=800)
    return np.repeat(levels, 25)


def _exceed_rate(series, autocorr):
    qb = QBETS(
        QBETSConfig(q=0.95, c=0.95, autocorr=autocorr, changepoint=False)
    )
    bounds = qb.bound_series(series)
    valid = ~np.isnan(bounds)
    rate = float(np.mean(series[valid] > bounds[valid]))
    return rate, qb.bound


def test_autocorr_correction_tightens_coverage(benchmark, sticky_series):
    def run_both():
        return (
            _exceed_rate(sticky_series, autocorr=True),
            _exceed_rate(sticky_series, autocorr=False),
        )

    (with_corr, without_corr) = benchmark.pedantic(
        run_both, rounds=1, iterations=1
    )
    rate_on, bound_on = with_corr
    rate_off, bound_off = without_corr
    print()
    print(f"  corrected:   exceedance rate={rate_on:.4f} bound={bound_on:.4f}")
    print(f"  uncorrected: exceedance rate={rate_off:.4f} bound={bound_off:.4f}")

    # The correction can only reduce the exceedance rate...
    assert rate_on <= rate_off + 1e-9
    # ...by choosing a (weakly) more conservative order statistic.
    assert bound_on >= bound_off - 1e-12
    # And the corrected rate respects the nominal 1 - q = 5% budget.
    assert rate_on <= 0.05 + 0.01
